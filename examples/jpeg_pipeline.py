#!/usr/bin/env python
"""Map the JPEG encoder pipeline onto a heterogeneous workstation cluster.

The paper's introduction motivates pipeline workflows with digital image
processing — JPEG encoding explicitly (and the companion study [3] maps
exactly this pipeline).  This example:

1. builds the 7-stage JPEG encoder for 1080p frames;
2. defines a mixed cluster: two fast-but-flaky compute nodes, two
   mid-range ones, and two slow-but-reliable storage-class machines;
3. compares mapping strategies (fastest-only, Theorem 1 full
   replication, greedy split-and-replicate, local search) on the
   latency/reliability plane;
4. streams 30 frames through the chosen mapping in the discrete-event
   simulator and reports throughput.

Run:  python examples/jpeg_pipeline.py
"""

from repro import Platform, evaluate, latency
from repro.algorithms.heuristics import (
    greedy_minimize_fp,
    local_search_minimize_fp,
    single_interval_minimize_fp,
)
from repro.algorithms.mono import minimize_failure_probability
from repro.analysis import format_table
from repro.core.mapping import IntervalMapping
from repro.extensions import steady_state_period
from repro.api import check_one_port, simulate_stream
from repro.workloads.jpeg import jpeg_encoder_pipeline


def main() -> None:
    # volumes in bytes; work scaled so compute ~ communication on this
    # cluster (speeds in MB-equivalents/s)
    app = jpeg_encoder_pipeline(width=1920, height=1080, work_scale=0.4)
    print("JPEG encoder pipeline (1080p frame):")
    for stage in app.stages():
        print(
            f"  {stage.label:>14s}: work={stage.work / 1e6:8.1f}M  "
            f"in={stage.input_size / 1e6:6.2f}MB  "
            f"out={stage.output_size / 1e6:6.2f}MB"
        )

    platform = Platform.communication_homogeneous(
        speeds=[400e6, 380e6, 150e6, 140e6, 60e6, 55e6],
        bandwidth=120e6,
        failure_probabilities=[0.35, 0.40, 0.15, 0.18, 0.04, 0.05],
    )
    print(f"\ncluster: {platform}")
    print(
        format_table(
            ("node", "speed (Mops/s)", "failure prob"),
            [
                (p.label, p.speed / 1e6, p.failure_probability)
                for p in platform.processors
            ],
        )
    )

    # latency budget: 1.6x the fastest single-node encode
    fastest = IntervalMapping.single_interval(
        app.num_stages, {platform.fastest().index}
    )
    budget = 1.6 * latency(fastest, app, platform)
    print(f"\nlatency budget: {budget:.3f} s")

    strategies = {
        "fastest node only": lambda: fastest,
        "Theorem 1 (replicate everywhere)": lambda: (
            minimize_failure_probability(app, platform).mapping
        ),
        "best single interval": lambda: single_interval_minimize_fp(
            app, platform, budget
        ).mapping,
        "greedy split+replicate": lambda: greedy_minimize_fp(
            app, platform, budget
        ).mapping,
        "local search": lambda: local_search_minimize_fp(
            app, platform, budget, seed=0
        ).mapping,
    }
    rows = []
    chosen = None
    chosen_fp = 2.0
    for label, build in strategies.items():
        mapping = build()
        ev = evaluate(mapping, app, platform)
        within = ev.latency <= budget * (1 + 1e-9)
        rows.append(
            (
                label,
                ev.latency,
                ev.failure_probability,
                "yes" if within else "NO",
                str(mapping),
            )
        )
        if within and ev.failure_probability < chosen_fp:
            chosen_fp = ev.failure_probability
            chosen = mapping
    print()
    print(
        format_table(
            ("strategy", "latency", "failure prob", "in budget", "mapping"),
            rows,
        )
    )

    assert chosen is not None
    print(f"\nstreaming 30 frames through: {chosen}")
    result = simulate_stream(chosen, app, platform, num_datasets=30)
    check_one_port(result.trace)
    print(f"  mean frame latency : {result.mean_latency:.3f} s")
    print(f"  measured period    : {result.period:.3f} s/frame")
    print(
        f"  analytic period    : "
        f"{steady_state_period(chosen, app, platform):.3f} s/frame "
        f"(no-overlap upper bound)"
    )
    print(f"  throughput         : {result.throughput:.3f} frames/s")


if __name__ == "__main__":
    main()
