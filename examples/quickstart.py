#!/usr/bin/env python
"""Quickstart: model a pipeline, map it, evaluate both criteria.

Walks the full public API surface in five minutes:

1. describe a pipeline application (stages, work, data volumes);
2. describe a heterogeneous platform (speeds, failure probabilities,
   bandwidths);
3. build interval mappings with replication and evaluate their latency
   (paper eq. (1)/(2)) and failure probability;
4. run the paper's Algorithm 3 to optimise reliability under a latency
   budget;
5. cross-check with the exhaustive exact solver.

Run:  python examples/quickstart.py
"""

from repro import (
    IntervalMapping,
    PipelineApplication,
    Platform,
    evaluate,
    latency_breakdown,
)
from repro.algorithms.bicriteria import (
    algorithm3_minimize_fp,
    exhaustive_minimize_fp,
)
from repro.analysis import format_mapping_row


def main() -> None:
    # 1. A four-stage pipeline: a heavy middle, shrinking data volumes.
    app = PipelineApplication(
        works=(10.0, 40.0, 25.0, 5.0),
        volumes=(20.0, 12.0, 12.0, 6.0, 2.0),
        stage_names=("ingest", "transform", "reduce", "emit"),
    )
    print(f"application: {app}\n")

    # 2. Five processors, identical links (Communication Homogeneous),
    #    identical failure probability (the Theorem 6 setting).
    platform = Platform.communication_homogeneous(
        speeds=[8.0, 6.0, 5.0, 3.0, 2.0],
        bandwidth=4.0,
        failure_probabilities=[0.25] * 5,
    )
    print(f"platform: {platform}\n")

    # 3. Hand-built mappings: things a user might try first.
    candidates = {
        "fastest processor only": IntervalMapping.single_interval(4, {1}),
        "replicate on top-3": IntervalMapping.single_interval(4, {1, 2, 3}),
        "two intervals, no replication": IntervalMapping(
            [(1, 2), (3, 4)], [{1}, {2}]
        ),
        "two intervals, replicated": IntervalMapping(
            [(1, 2), (3, 4)], [{1, 3}, {2, 4}]
        ),
    }
    for label, mapping in candidates.items():
        ev = evaluate(mapping, app, platform)
        print(format_mapping_row(label, ev.latency, ev.failure_probability, mapping))

    # latency decomposition of the replicated mapping
    print("\nlatency breakdown (replicate on top-3):")
    bd = latency_breakdown(candidates["replicate on top-3"], app, platform)
    for cost in bd.intervals:
        print(
            f"  interval {cost.interval_index} (k={cost.replication}): "
            f"input {cost.input_time:.3f} + compute {cost.compute_time:.3f}"
        )
    print(f"  final output: {bd.final_output_time:.3f}")
    print(f"  total: {bd.total:.3f}\n")

    # 4. Optimise: best reliability within a latency budget (Algorithm 3).
    budget = 18.0
    result = algorithm3_minimize_fp(app, platform, budget)
    print(f"Algorithm 3 under latency <= {budget}:")
    print(f"  {result}\n")

    # 5. The exhaustive baseline agrees (Theorem 6 says it must).
    exact = exhaustive_minimize_fp(app, platform, budget)
    print(f"exhaustive check: FP {exact.failure_probability:.6f} "
          f"({exact.extras['explored']} mappings examined)")
    assert abs(exact.failure_probability - result.failure_probability) < 1e-12
    print("Algorithm 3 is optimal on this instance — as Theorem 6 proves.")


if __name__ == "__main__":
    main()
