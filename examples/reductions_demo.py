#!/usr/bin/env python
"""Watch the NP-hardness reductions run (Theorems 3 and 7).

NP-hardness proofs are usually read, not executed.  Here both gadgets
are built with the library's own model types and solved exactly on both
sides, so you can *see* the equivalences:

* Theorem 3 — a Travelling-Salesman instance becomes a one-to-one
  mapping instance whose optimal latency is (optimal path cost) + n + 2;
* Theorem 7 — a 2-PARTITION instance becomes a bi-criteria instance
  that is feasible iff the integers split evenly.

Run:  python examples/reductions_demo.py
"""

from repro.algorithms.mono import minimize_latency_one_to_one_exact
from repro.analysis import format_table
from repro.reductions import (
    TSPInstance,
    TwoPartitionInstance,
    build_bicriteria_gadget,
    build_one_to_one_gadget,
    feasible_replica_set,
    random_tsp_instance,
    solve_hamiltonian_path,
    solve_two_partition,
)


def tsp_demo() -> None:
    print("=" * 70)
    print("Theorem 3: TSP -> one-to-one latency minimisation")
    print("=" * 70)
    inst = random_tsp_instance(6, seed=42)
    cost, path = solve_hamiltonian_path(inst)
    app, plat, threshold = build_one_to_one_gadget(inst)
    result = minimize_latency_one_to_one_exact(app, plat)
    chain = [next(iter(a)) for a in result.mapping.allocations]
    n = inst.num_vertices

    print(f"graph: {n} vertices, bound K = {inst.bound}")
    print(f"optimal Hamiltonian path  : {path} (cost {cost:g})")
    print(f"gadget: {n} unit stages on {n} unit processors, "
          f"K' = K + n + 2 = {threshold:g}")
    print(f"optimal one-to-one mapping: stages -> processors {chain}")
    print(f"optimal latency           : {result.latency:g} "
          f"= path cost + n + 2 = {cost:g} + {n} + 2")
    print(f"decision (path <= K)      : {cost <= inst.bound}")
    print(f"decision (latency <= K')  : {result.latency <= threshold + 1e-9}")
    assert (cost <= inst.bound) == (result.latency <= threshold + 1e-9)
    # the processor chain retraces *an* optimal path (ties possible):
    # its edge cost must equal the Held-Karp optimum
    chain_cost = sum(
        inst.costs[a - 1][b - 1] for a, b in zip(chain, chain[1:])
    )
    assert abs(chain_cost - cost) < 1e-9
    assert chain[0] == inst.source + 1 and chain[-1] == inst.tail + 1
    print("==> the mapping retraces an optimal tour.  QED, executably.\n")


def two_partition_demo() -> None:
    print("=" * 70)
    print("Theorem 7: 2-PARTITION -> bi-criteria feasibility")
    print("=" * 70)
    rows = []
    for values in [
        (3, 1, 1, 2, 2, 1),   # S=10, partitionable
        (5, 4, 3, 2, 1, 1),   # S=16, partitionable
        (7, 3, 2, 1, 1, 1),   # S=15, odd -> NO
        (8, 1, 1, 1, 1, 1),   # S=13, odd -> NO
        (10, 2, 2, 2, 2, 2),  # S=20, 10 vs 2+2+2+2+2 -> YES
    ]:
        inst = TwoPartitionInstance(values)
        exists, subset = solve_two_partition(inst)
        feasible, replicas = feasible_replica_set(inst)
        _, _, L, FP = build_bicriteria_gadget(inst)
        assert exists == feasible
        rows.append(
            (
                str(values),
                inst.total,
                f"L<={L:g}, FP<={FP:.3e}",
                "yes" if exists else "no",
                str(sorted(subset)) if subset else "-",
            )
        )
    print(
        format_table(
            ("integers", "S", "gadget thresholds", "feasible?", "half-sum subset"),
            rows,
        )
    )
    print(
        "\nA replica set meets BOTH thresholds exactly when its integers"
        "\nsum to S/2: latency forces sum <= S/2, reliability forces"
        "\nsum >= S/2.  The gadget decides 2-PARTITION.\n"
    )


if __name__ == "__main__":
    tsp_demo()
    two_partition_demo()
