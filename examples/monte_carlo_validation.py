#!/usr/bin/env python
"""Validate the paper's closed forms against the simulation substrate.

Three checks on the Figure 5 instance and a random heterogeneous one:

1. **FP identity** — the analytic failure probability must sit inside
   the Monte-Carlo confidence interval of 200k vectorised survival
   draws;
2. **latency worst-case identity** — the adversarial replay of the
   discrete-event model equals eq. (1)/(2) exactly;
3. **latency bound** — realised latencies under random failure
   scenarios never exceed the analytic worst case, and the realised
   distribution sits below it.

Run:  python examples/monte_carlo_validation.py
"""

import numpy as np

from repro import failure_probability, latency
from repro.analysis import format_table
from repro.api import (
    ElectionPolicy,
    ExponentialLifetimeModel,
    empirical_vs_analytic_fp,
    realized_latency,
    sample_latencies,
)
from repro.workloads.reference import figure5_instance
from repro.workloads.synthetic import (
    random_application,
    random_fully_heterogeneous,
)


def validate(name, mapping, app, plat, rng) -> list:
    analytic_fp = failure_probability(mapping, plat)
    fp_report = empirical_vs_analytic_fp(
        mapping, plat, trials=200_000, rng=rng
    )
    worst = latency(mapping, app, plat)
    replay = realized_latency(
        mapping, app, plat, policy=ElectionPolicy.WORST_CASE
    ).latency
    sample = sample_latencies(mapping, app, plat, trials=3000, rng=rng)
    assert abs(fp_report["z"]) < 4.0, "MC estimate disagrees with formula!"
    assert replay == worst, "adversarial replay must equal the closed form"
    assert sample.max_latency <= worst + 1e-9, "bound violated!"
    return [
        name,
        analytic_fp,
        fp_report["estimate"],
        fp_report["z"],
        worst,
        sample.max_latency,
        sample.mean_latency,
    ]


def main() -> None:
    rng = np.random.default_rng(2008)
    rows = []

    fig5 = figure5_instance()
    rows.append(
        validate(
            "fig5 two-interval",
            fig5.two_interval_mapping,
            fig5.application,
            fig5.platform,
            rng,
        )
    )
    rows.append(
        validate(
            "fig5 single-interval",
            fig5.best_single_interval,
            fig5.application,
            fig5.platform,
            rng,
        )
    )

    app = random_application(4, seed=1)
    plat = random_fully_heterogeneous(5, seed=2)
    from repro.core.mapping import IntervalMapping

    mapping = IntervalMapping([(1, 2), (3, 4)], [{1, 4}, {2, 3, 5}])
    rows.append(validate("random het 2-interval", mapping, app, plat, rng))

    print(
        format_table(
            (
                "mapping",
                "FP analytic",
                "FP estimate",
                "z",
                "latency worst",
                "realised max",
                "realised mean",
            ),
            rows,
            float_format="{:.5g}",
        )
    )

    print(
        "\nExponential-lifetime model (processors die mid-mission) has the"
        " same per-mission marginals:"
    )
    est = empirical_vs_analytic_fp(
        fig5.two_interval_mapping, fig5.platform, trials=100_000, rng=rng
    )
    model = ExponentialLifetimeModel(mission_time=5.0)
    from repro.api import estimate_failure_probability

    est_exp = estimate_failure_probability(
        fig5.two_interval_mapping,
        fig5.platform,
        trials=100_000,
        rng=rng,
        model=model,
    )
    print(f"  Bernoulli estimate  : {est['estimate']:.5f}")
    print(f"  exponential estimate: {est_exp.mean:.5f}")
    print(f"  analytic            : {est['analytic']:.5f}")
    print("\nAll identities hold: the closed forms of Section 2.2 describe")
    print("exactly the adversarial behaviour of the simulated platform.")


if __name__ == "__main__":
    main()
