"""End-to-end integration: every theorem of the paper, machine-checked.

One test per paper claim, each wiring several subsystems together
(generators -> solvers -> metrics -> baselines).  These are the
executable statements of the reproduction.
"""

import pytest

from repro.algorithms.bicriteria import (
    algorithm1_minimize_fp,
    algorithm2_minimize_latency,
    algorithm3_minimize_fp,
    algorithm4_minimize_latency,
    enumerate_evaluations,
    exhaustive_minimize_fp,
    exhaustive_minimize_latency,
)
from repro.algorithms.mono import (
    minimize_failure_probability,
    minimize_latency_comm_homogeneous,
    minimize_latency_general,
    minimize_latency_general_bruteforce,
    minimize_latency_one_to_one_exact,
)
from repro.core import latency
from repro.exceptions import InfeasibleProblemError
from repro.reductions import (
    random_tsp_instance,
    random_two_partition_instance,
    verify_tsp_reduction,
    verify_two_partition_reduction,
)

from tests.helpers import make_instance

ALL_KINDS = [
    "fully-homogeneous",
    "fully-homogeneous-failhet",
    "comm-homogeneous",
    "comm-homogeneous-failhom",
    "fully-heterogeneous",
]


class TestTheorem1:
    """Minimizing the failure probability is polynomial (all platforms)."""

    @pytest.mark.parametrize("kind", ALL_KINDS)
    @pytest.mark.parametrize("seed", [10, 20])
    def test_optimal_everywhere(self, kind, seed):
        app, plat = make_instance(kind, n=3, m=4, seed=seed)
        result = minimize_failure_probability(app, plat)
        assert result.failure_probability == pytest.approx(
            min(
                ev.failure_probability
                for ev in enumerate_evaluations(app, plat)
            ),
            abs=1e-12,
        )


class TestTheorem2:
    """Minimizing latency is polynomial on Communication Homogeneous."""

    @pytest.mark.parametrize(
        "kind", ["fully-homogeneous", "comm-homogeneous"]
    )
    @pytest.mark.parametrize("seed", [10, 20])
    def test_fastest_single_processor_is_optimal(self, kind, seed):
        app, plat = make_instance(kind, n=4, m=4, seed=seed)
        result = minimize_latency_comm_homogeneous(app, plat)
        assert result.latency == pytest.approx(
            min(ev.latency for ev in enumerate_evaluations(app, plat)),
            rel=1e-12,
        )


class TestTheorem3:
    """One-to-one latency on Fully Heterogeneous is NP-hard: the gadget
    equivalence holds and the exact solver is exponential-state."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_reduction_equivalence(self, seed):
        report = verify_tsp_reduction(random_tsp_instance(5, seed=seed))
        assert report["optimal_latency"] == pytest.approx(
            report["expected_latency"]
        )


class TestTheorem4:
    """General-mapping latency is polynomial via shortest path."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_shortest_path_optimal(self, seed):
        app, plat = make_instance("fully-heterogeneous", n=4, m=4, seed=seed)
        sp = minimize_latency_general(app, plat)
        brute = minimize_latency_general_bruteforce(app, plat)
        assert sp.latency == pytest.approx(brute.latency, rel=1e-12)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_general_lower_bounds_interval(self, seed):
        """Relaxation ordering: general <= interval optimal latency."""
        app, plat = make_instance("fully-heterogeneous", n=3, m=4, seed=seed)
        sp = minimize_latency_general(app, plat)
        interval_best = min(
            ev.latency for ev in enumerate_evaluations(app, plat)
        )
        assert sp.latency <= interval_best + 1e-9


class TestTheorem5:
    """Algorithms 1-2 solve the bi-criteria problem on Fully Homogeneous
    platforms — including the heterogeneous-failure extension."""

    @pytest.mark.parametrize(
        "kind", ["fully-homogeneous", "fully-homogeneous-failhet"]
    )
    @pytest.mark.parametrize("seed", [31, 32])
    def test_both_queries_optimal(self, kind, seed):
        app, plat = make_instance(kind, n=3, m=4, seed=seed)
        evaluations = list(enumerate_evaluations(app, plat))
        latencies = sorted({ev.latency for ev in evaluations})
        for threshold in latencies[:: max(1, len(latencies) // 5)]:
            got = algorithm1_minimize_fp(app, plat, threshold)
            want = exhaustive_minimize_fp(app, plat, threshold)
            assert got.failure_probability == pytest.approx(
                want.failure_probability, abs=1e-12
            )
        fps = sorted({ev.failure_probability for ev in evaluations})
        for threshold in fps[:: max(1, len(fps) // 5)]:
            got = algorithm2_minimize_latency(app, plat, threshold)
            want = exhaustive_minimize_latency(app, plat, threshold)
            assert got.latency == pytest.approx(want.latency, rel=1e-9)


class TestTheorem6:
    """Algorithms 3-4 on Communication Homogeneous + Failure Homogeneous."""

    @pytest.mark.parametrize("seed", [41, 42, 43])
    def test_both_queries_optimal(self, seed):
        app, plat = make_instance(
            "comm-homogeneous-failhom", n=3, m=4, seed=seed
        )
        evaluations = list(enumerate_evaluations(app, plat))
        latencies = sorted({ev.latency for ev in evaluations})
        for threshold in latencies[:: max(1, len(latencies) // 5)]:
            try:
                got = algorithm3_minimize_fp(app, plat, threshold)
            except InfeasibleProblemError:
                continue
            want = exhaustive_minimize_fp(app, plat, threshold)
            assert got.failure_probability == pytest.approx(
                want.failure_probability, abs=1e-12
            )
        for threshold in (1.0, 0.5, 0.25, 0.1):
            try:
                got = algorithm4_minimize_latency(app, plat, threshold)
            except InfeasibleProblemError:
                with pytest.raises(InfeasibleProblemError):
                    exhaustive_minimize_latency(app, plat, threshold)
                continue
            want = exhaustive_minimize_latency(app, plat, threshold)
            assert got.latency == pytest.approx(want.latency, rel=1e-9)


class TestSection44OpenProblem:
    """Comm. Homogeneous + Failure Heterogeneous: single-interval
    optimality genuinely fails (the Figure 5 phenomenon) on a noticeable
    fraction of random instances."""

    @staticmethod
    def _figure5_like_instance(seed):
        """A randomised family around the Figure 5 pattern: one slow
        reliable processor, several fast flaky ones, a light front stage
        feeding a heavy one, and a dominant input volume."""
        import random as pyrandom

        from repro.core import PipelineApplication, Platform

        rng = pyrandom.Random(seed)
        fast = rng.randint(4, 8)
        fast_speed = rng.uniform(40.0, 150.0)
        app = PipelineApplication(
            works=(rng.uniform(0.5, 2.0), rng.uniform(60.0, 140.0)),
            volumes=(rng.uniform(6.0, 14.0), rng.uniform(0.5, 2.0), 0.0),
        )
        plat = Platform.communication_homogeneous(
            [1.0] + [fast_speed] * fast,
            bandwidth=1.0,
            failure_probabilities=[rng.uniform(0.02, 0.15)]
            + [rng.uniform(0.6, 0.9)] * fast,
        )
        return app, plat

    def test_multi_interval_wins_on_figure5_like_family(self):
        """The paper's claim is existential: there are Failure
        Heterogeneous instances where no single interval is optimal.  The
        randomised Figure 5 family reproduces it reliably."""
        from repro.algorithms.heuristics import single_interval_minimize_fp
        from repro.core import IntervalMapping, latency

        wins = 0
        total = 0
        for seed in range(8):
            app, plat = self._figure5_like_instance(seed)
            two = IntervalMapping(
                [(1, 1), (2, 2)], [{1}, set(range(2, plat.size + 1))]
            )
            threshold = latency(two, app, plat)
            try:
                single = single_interval_minimize_fp(app, plat, threshold)
            except InfeasibleProblemError:
                continue
            exact = exhaustive_minimize_fp(app, plat, threshold)
            total += 1
            if exact.failure_probability < single.failure_probability - 1e-12:
                wins += 1
                assert exact.mapping.num_intervals > 1
        assert total >= 5
        assert wins >= total // 2  # the phenomenon is robust in-family


class TestTheorem7:
    """Bi-criteria on Fully Heterogeneous is NP-hard: gadget equivalence."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
    def test_reduction_equivalence(self, seed):
        inst = random_two_partition_instance(6, seed=seed)
        report = verify_two_partition_reduction(inst)
        assert report["partition_exists"] == report["gadget_feasible"]


class TestMonotonicityAcrossProblems:
    """Structural sanity spanning solvers: tighter thresholds can only
    worsen the other objective."""

    @pytest.mark.parametrize("seed", [3, 7])
    def test_fp_monotone_in_latency_budget(self, seed):
        app, plat = make_instance("comm-homogeneous", n=3, m=4, seed=seed)
        evaluations = list(enumerate_evaluations(app, plat))
        budgets = sorted({ev.latency for ev in evaluations})[::7]
        previous = 1.1
        for budget in budgets:
            got = exhaustive_minimize_fp(app, plat, budget)
            assert got.failure_probability <= previous + 1e-12
            previous = got.failure_probability
