"""Cross-validation: analytic formulas vs arithmetic replay vs DES vs
Monte-Carlo (experiment E12's machinery, exercised as tests)."""

import random as pyrandom

import pytest

np = pytest.importorskip("numpy", exc_type=ImportError)

from repro.algorithms.heuristics import random_mapping
from repro.core import failure_probability, latency
from repro.simulation import (
    BernoulliMissionModel,
    ElectionPolicy,
    check_dataflow,
    check_one_port,
    estimate_failure_probability,
    realized_latency,
    sample_latencies,
    simulate_stream,
)

from tests.helpers import make_instance

KINDS = ["fully-homogeneous", "comm-homogeneous", "fully-heterogeneous"]


class TestAnalyticVsReplay:
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("seed", range(5))
    def test_worst_case_identity(self, kind, seed):
        """eq (1)/(2) == adversarial replay, bit-for-bit tolerance."""
        app, plat = make_instance(kind, n=4, m=5, seed=seed)
        mapping = random_mapping(4, 5, pyrandom.Random(seed))
        assert realized_latency(
            mapping, app, plat, policy=ElectionPolicy.WORST_CASE
        ).latency == pytest.approx(latency(mapping, app, plat), rel=1e-12)

    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("seed", range(3))
    def test_realistic_bounded_by_worst_case(self, kind, seed):
        app, plat = make_instance(kind, n=4, m=5, seed=seed)
        mapping = random_mapping(4, 5, pyrandom.Random(seed))
        sample = sample_latencies(
            mapping, app, plat, trials=200, rng=np.random.default_rng(seed)
        )
        if sample.latencies:
            assert sample.max_latency <= sample.worst_case + 1e-9


class TestReplayVsDES:
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("seed", range(3))
    def test_single_dataset_identity(self, kind, seed):
        """The DES engine and the arithmetic replay agree on a single
        data set with no failures."""
        app, plat = make_instance(kind, n=3, m=4, seed=seed)
        mapping = random_mapping(3, 4, pyrandom.Random(seed))
        des = simulate_stream(mapping, app, plat)
        arith = realized_latency(mapping, app, plat)
        assert des.outcomes[0].latency == pytest.approx(
            arith.latency, rel=1e-9
        )
        check_one_port(des.trace)
        check_dataflow(des.trace, 1)

    @pytest.mark.parametrize("seed", range(3))
    def test_single_dataset_identity_under_failures(self, seed):
        app, plat = make_instance("comm-homogeneous", n=3, m=5, seed=seed)
        mapping = random_mapping(3, 5, pyrandom.Random(seed))
        model = BernoulliMissionModel(mission_time=1e9)
        rng = np.random.default_rng(seed)
        for _ in range(10):
            scenario = model.draw(plat, rng)
            arith = realized_latency(mapping, app, plat, scenario)
            des = simulate_stream(mapping, app, plat, scenario=scenario)
            if arith.success:
                assert des.outcomes[0].success
                assert des.outcomes[0].latency == pytest.approx(
                    arith.latency, rel=1e-9
                )
            else:
                assert not des.outcomes[0].success
                assert des.outcomes[0].failed_interval == arith.failed_interval


class TestAnalyticVsMonteCarlo:
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("seed", range(3))
    def test_fp_within_confidence(self, kind, seed):
        app, plat = make_instance(kind, n=3, m=5, seed=seed)
        mapping = random_mapping(3, 5, pyrandom.Random(seed))
        analytic = failure_probability(mapping, plat)
        estimate = estimate_failure_probability(
            mapping, plat, trials=40_000, rng=np.random.default_rng(seed)
        )
        assert estimate.contains(analytic, z=4.5)

    @pytest.mark.parametrize("seed", range(3))
    def test_success_rate_matches_one_minus_fp(self, seed):
        app, plat = make_instance("comm-homogeneous", n=3, m=5, seed=seed)
        mapping = random_mapping(3, 5, pyrandom.Random(seed))
        sample = sample_latencies(
            mapping, app, plat, trials=3000, rng=np.random.default_rng(seed)
        )
        analytic = 1 - failure_probability(mapping, plat)
        assert sample.success_rate == pytest.approx(analytic, abs=0.04)


class TestStreamInvariants:
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("round_robin", [False, True])
    def test_one_port_holds_under_streaming(self, kind, round_robin):
        app, plat = make_instance(kind, n=3, m=4, seed=5)
        mapping = random_mapping(3, 4, pyrandom.Random(5))
        res = simulate_stream(
            mapping, app, plat, num_datasets=15, round_robin=round_robin
        )
        check_one_port(res.trace)
        check_dataflow(res.trace, 15)
        assert res.all_succeeded
