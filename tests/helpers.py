"""Plain-function test helpers importable from any test module.

Kept separate from ``conftest.py`` (which pytest loads as a plugin and
which is therefore awkward to import) so both the test suite and the
benchmark harness can use ``from tests.helpers import make_instance``.
"""

from __future__ import annotations

from repro.core.application import PipelineApplication
from repro.core.platform import Platform
from repro.workloads.synthetic import (
    random_application,
    random_comm_homogeneous,
    random_fully_heterogeneous,
    random_fully_homogeneous,
)

__all__ = ["make_instance"]


def make_instance(
    kind: str, n: int, m: int, seed: int
) -> tuple[PipelineApplication, Platform]:
    """Build a (application, platform) pair for a platform-kind string."""
    app = random_application(n, seed=seed)
    if kind == "fully-homogeneous":
        plat = random_fully_homogeneous(m, seed=seed + 1)
    elif kind == "fully-homogeneous-failhet":
        plat = random_fully_homogeneous(
            m, seed=seed + 1, failure_heterogeneous=True
        )
    elif kind == "comm-homogeneous":
        plat = random_comm_homogeneous(m, seed=seed + 1)
    elif kind == "comm-homogeneous-failhom":
        plat = random_comm_homogeneous(
            m, seed=seed + 1, failure_homogeneous=True
        )
    elif kind == "fully-heterogeneous":
        plat = random_fully_heterogeneous(m, seed=seed + 1)
    else:
        raise ValueError(kind)
    return app, plat
