"""Every example script must run cleanly (they double as acceptance
tests for the public API)."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)

#: examples exercising the vectorised Monte-Carlo validators, which
#: genuinely need numpy (everything else runs on the scalar paths)
NUMPY_ONLY = {"batch_solving.py", "monte_carlo_validation.py"}


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script, capsys, monkeypatch):
    if script.name in NUMPY_ONLY:
        pytest.importorskip("numpy", exc_type=ImportError)
    # examples use __name__ == "__main__" guards; run them as main
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3  # deliverable (b): at least three examples
