"""Tests for the throughput/period extension (paper Section 5)."""

import pytest

from repro.core import IntervalMapping, StageInterval
from repro.extensions import (
    round_robin_dataset_failure_probability,
    round_robin_period,
    steady_state_period,
    throughput,
)
from repro.simulation import simulate_stream

from tests.helpers import make_instance


class TestPeriodFormulas:
    def test_single_processor_period(self, fig5):
        mapping = IntervalMapping.single_interval(2, {2})
        period = steady_state_period(
            mapping, fig5.application, fig5.platform
        )
        # P2's cycle: receive 10 + compute 101/100 + send 0
        assert period == pytest.approx(10 + 1.01)

    def test_replication_slows_period(self, fig5):
        k1 = IntervalMapping.single_interval(2, {2})
        k3 = IntervalMapping.single_interval(2, {2, 3, 4})
        p1 = steady_state_period(k1, fig5.application, fig5.platform)
        p3 = steady_state_period(k3, fig5.application, fig5.platform)
        assert p3 >= p1

    def test_round_robin_speeds_up(self, fig5):
        mapping = IntervalMapping.single_interval(2, {2, 3, 4})
        rel = steady_state_period(mapping, fig5.application, fig5.platform)
        rr = round_robin_period(mapping, fig5.application, fig5.platform)
        assert rr <= rel

    def test_throughput_inverse(self, fig5):
        mapping = IntervalMapping.single_interval(2, {2})
        period = steady_state_period(mapping, fig5.application, fig5.platform)
        assert throughput(
            mapping, fig5.application, fig5.platform
        ) == pytest.approx(1.0 / period)
        assert throughput(
            mapping, fig5.application, fig5.platform, round_robin=True
        ) == pytest.approx(
            1.0 / round_robin_period(mapping, fig5.application, fig5.platform)
        )


class TestRoundRobinReliability:
    def test_mean_failure_per_interval(self, fig5):
        mapping = fig5.two_interval_mapping
        fp = round_robin_dataset_failure_probability(mapping, fig5.platform)
        # interval 1: mean fp 0.1; interval 2: mean fp 0.8
        assert fp == pytest.approx(1 - 0.9 * 0.2, rel=1e-12)

    def test_round_robin_less_reliable_than_replication(self, fig5):
        from repro.core import failure_probability

        mapping = fig5.two_interval_mapping
        rr = round_robin_dataset_failure_probability(mapping, fig5.platform)
        rel = failure_probability(mapping, fig5.platform)
        assert rr > rel  # the paper's throughput/reliability tension


class TestAgainstStreamSimulation:
    """The DES steady-state period must approach the formula."""

    def test_reliability_replication_period(self, fig5):
        mapping = IntervalMapping.single_interval(2, {2, 3})
        predicted = steady_state_period(
            mapping, fig5.application, fig5.platform
        )
        res = simulate_stream(
            mapping, fig5.application, fig5.platform, num_datasets=40
        )
        assert res.all_succeeded
        assert res.period == pytest.approx(predicted, rel=0.15)

    def test_round_robin_period(self, fig5):
        mapping = IntervalMapping.single_interval(2, {2, 3})
        predicted = round_robin_period(
            mapping, fig5.application, fig5.platform
        )
        res = simulate_stream(
            mapping,
            fig5.application,
            fig5.platform,
            num_datasets=40,
            round_robin=True,
        )
        assert res.all_succeeded
        assert res.period == pytest.approx(predicted, rel=0.25)

    def test_round_robin_beats_replication_in_simulation(self, fig5):
        mapping = IntervalMapping.single_interval(2, {2, 3, 4, 5})
        rel = simulate_stream(
            mapping, fig5.application, fig5.platform, num_datasets=30
        )
        rr = simulate_stream(
            mapping,
            fig5.application,
            fig5.platform,
            num_datasets=30,
            round_robin=True,
        )
        assert rr.period < rel.period

    @pytest.mark.parametrize("seed", range(4))
    def test_period_formula_bounds_unreplicated_streams(self, seed):
        """With one processor per interval, the serial cycle
        (receive + compute + send) is a *no-overlap* upper bound on the
        live period; the engine may overlap a port receive with the CPU
        compute of the previous data set, gaining at most 2x."""
        import random as pyrandom

        rng = pyrandom.Random(seed)
        app, plat = make_instance("comm-homogeneous", n=3, m=4, seed=seed)
        cuts = sorted(rng.sample([1, 2], rng.randint(0, 2)))
        bounds = [0, *cuts, 3]
        intervals = [
            StageInterval(lo + 1, hi) for lo, hi in zip(bounds, bounds[1:])
        ]
        procs = rng.sample(range(1, 5), len(intervals))
        mapping = IntervalMapping(intervals, [{p} for p in procs])
        res = simulate_stream(mapping, app, plat, num_datasets=60)
        predicted = steady_state_period(mapping, app, plat)
        assert res.period <= predicted * 1.05 + 1e-9
        assert res.period >= predicted * 0.45 - 1e-9

    @pytest.mark.parametrize("seed", range(3))
    def test_period_formula_upper_bounds_replicated_streams(self, seed):
        """With replication the live engine rotates the forwarding duty,
        so the adversarial-sender formula is an upper-side estimate."""
        import random as pyrandom

        from repro.algorithms.heuristics import random_mapping

        app, plat = make_instance("comm-homogeneous", n=3, m=4, seed=seed)
        mapping = random_mapping(3, 4, pyrandom.Random(seed))
        res = simulate_stream(mapping, app, plat, num_datasets=50)
        predicted = steady_state_period(mapping, app, plat)
        assert res.period <= predicted * 1.25 + 1e-9
