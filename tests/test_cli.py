"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert "repro-pipeline" in capsys.readouterr().out


class TestCommands:
    def test_examples_prints_paper_numbers(self, capsys):
        assert main(["examples"]) == 0
        out = capsys.readouterr().out
        assert "105" in out
        assert "0.64" in out
        assert "0.196637" in out

    def test_frontier(self, capsys):
        assert main(["frontier", "--stages", "2", "--processors", "3"]) == 0
        out = capsys.readouterr().out
        assert "Pareto frontier" in out

    @pytest.mark.parametrize(
        "algorithm", ["min-fp", "min-latency", "alg1", "alg2", "alg3", "alg4"]
    )
    def test_solve(self, algorithm, capsys):
        args = ["solve", algorithm, "--stages", "2", "--processors", "3"]
        if algorithm in ("alg1", "alg3"):
            args += ["--threshold", "1000"]
        elif algorithm in ("alg2", "alg4"):
            args += ["--threshold", "0.99"]
        assert main(args) == 0
        assert "SolverResult" in capsys.readouterr().out

class TestSimulateCommand:
    SPEC = {
        "schema": 1,
        "kind": "simulation",
        "instance": {"scenario": "failure-mix", "seed": 3, "params": {"stages": 6}},
        "solver": "greedy-min-fp",
        "threshold": 80.0,
        "policy": "resolve-warm",
        "trace": {"kind": "uniform", "items": 20, "rate": 0.05},
        "failures": {"events": [{"time": 60.0, "action": "kill", "processor": 2}]},
        "seed": 7,
    }

    @pytest.fixture
    def spec_path(self, tmp_path):
        path = tmp_path / "sim.json"
        path.write_text(json.dumps(self.SPEC))
        return str(path)

    def test_simulate_table(self, spec_path, capsys):
        assert main(["simulate", spec_path]) == 0
        out = capsys.readouterr().out
        assert "re-solves:" in out
        assert "latency" in out
        assert "resolve-warm" in out

    def test_simulate_json_reports_resolves(self, spec_path, capsys):
        assert main(["simulate", spec_path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["resolves"] >= 1
        assert payload["items_total"] == 20

    def test_simulate_stream_emits_epoch_ndjson(self, spec_path, capsys):
        assert main(["simulate", spec_path, "--stream"]) == 0
        lines = capsys.readouterr().out.splitlines()
        epochs = [json.loads(ln) for ln in lines if ln.startswith("{")]
        assert epochs and all("epoch" in e for e in epochs)

    def test_simulate_policy_and_seed_overrides(self, spec_path, capsys):
        assert main(
            ["simulate", spec_path, "--policy", "none", "--seed", "9", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["resolves"] == 0

    def test_simulate_rejects_sweep_spec(self, tmp_path, capsys):
        path = tmp_path / "sweep.json"
        path.write_text(
            json.dumps(
                {
                    "instances": [{"scenario": "failure-mix", "seed": 1}],
                    "solvers": ["greedy-min-fp"],
                    "thresholds": [50.0],
                }
            )
        )
        assert main(["simulate", str(path)]) == 2
        assert "sweep" in capsys.readouterr().err

    def test_simulate_rejects_bad_spec(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({**self.SPEC, "polcy": "none"}))
        assert main(["simulate", str(path)]) == 2
        assert "polcy" in capsys.readouterr().err

    def test_simulate_missing_file(self, tmp_path, capsys):
        assert main(["simulate", str(tmp_path / "nope.json")]) == 2
        assert "cannot read spec" in capsys.readouterr().err


class TestBatchCommand:
    BASE = [
        "batch",
        "--solver",
        "greedy-min-fp",
        "--instances",
        "4",
        "--stages",
        "3",
        "--processors",
        "4",
        "--threshold",
        "80",
        "--seed",
        "7",
    ]

    def test_json_output_shape(self, capsys):
        assert main([*self.BASE, "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 4
        for i, record in enumerate(records):
            assert record["index"] == i
            assert record["solver"] == "greedy-min-fp"
            assert "seed=" in record["tag"]
            if "error" not in record:
                assert record["latency"] > 0
                assert 0.0 <= record["failure_probability"] <= 1.0
                assert record["mapping"]["kind"] == "interval-mapping"

    def test_workers_do_not_change_results(self, capsys):
        assert main([*self.BASE, "--json"]) == 0
        serial = capsys.readouterr().out
        assert main([*self.BASE, "--json", "--workers", "2"]) == 0
        parallel = capsys.readouterr().out

        def strip_elapsed(raw):
            return [
                {k: v for k, v in r.items() if k != "elapsed"}
                for r in json.loads(raw)
            ]

        assert strip_elapsed(serial) == strip_elapsed(parallel)

    def test_deterministic_given_seed(self, capsys):
        args = [
            "batch",
            "--solver",
            "local-search-min-fp",
            "--instances",
            "3",
            "--threshold",
            "90",
            "--seed",
            "3",
            "--json",
        ]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(args) == 0
        second = json.loads(capsys.readouterr().out)
        for a, b in zip(first, second):
            assert a.get("latency") == b.get("latency")
            assert a.get("failure_probability") == b.get("failure_probability")
            assert a.get("mapping") == b.get("mapping")

    def test_table_output(self, capsys):
        assert main(self.BASE) == 0
        out = capsys.readouterr().out
        assert "failure-prob" in out
        assert "instance-0(seed=7)" in out

    def test_list_solvers(self, capsys):
        assert main(["batch", "--list-solvers"]) == 0
        out = capsys.readouterr().out
        assert "alg1" in out
        assert "exhaustive-min-fp" in out
        assert "heuristic" in out

    def test_list_solvers_json(self, capsys):
        assert main(["batch", "--list-solvers", "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        names = {r["name"] for r in records}
        assert {"alg1", "alg3", "greedy-min-fp", "anneal-min-latency"} <= names

    def test_missing_solver_is_an_error(self, capsys):
        assert main(["batch"]) == 2
        assert "--solver is required" in capsys.readouterr().out

    def test_all_failed_sets_exit_code(self, capsys):
        # an impossible latency bound fails every instance
        args = [
            "batch",
            "--solver",
            "greedy-min-fp",
            "--instances",
            "2",
            "--threshold",
            "1e-12",
            "--json",
        ]
        assert main(args) == 1
        records = json.loads(capsys.readouterr().out)
        assert all("error" in r for r in records)


class TestBatchStoreAndStreaming:
    def _base(self, *extra):
        return [
            "batch",
            "--solver",
            "greedy-min-fp",
            "--instances",
            "3",
            "--threshold",
            "80",
            "--seed",
            "7",
            *extra,
        ]

    def test_store_warm_run_is_all_cached(self, tmp_path, capsys):
        store = str(tmp_path / "results.json")
        assert main(self._base("--store", store, "--json")) == 0
        cold = json.loads(capsys.readouterr().out)
        assert not any(r["cached"] for r in cold)
        assert main(self._base("--store", store, "--json")) == 0
        warm = json.loads(capsys.readouterr().out)
        assert all(r["cached"] for r in warm)
        for a, b in zip(cold, warm):
            assert a.get("latency") == b.get("latency")
            assert a.get("mapping") == b.get("mapping")

    def test_store_stats_reported(self, tmp_path, capsys):
        store = str(tmp_path / "results.json")
        assert main(self._base("--store", store)) == 0
        err = capsys.readouterr().err
        assert "3 miss(es)" in err
        assert main(self._base("--store", store)) == 0
        err = capsys.readouterr().err
        assert "3 hit(s)" in err
        assert "100% hit rate" in err

    def test_sqlite_store_backend(self, tmp_path, capsys):
        store = str(tmp_path / "results.sqlite")
        assert main(self._base("--store", store)) == 0
        capsys.readouterr()
        assert main(self._base("--store", store, "--json")) == 0
        warm = json.loads(capsys.readouterr().out)
        assert all(r["cached"] for r in warm)

    def test_no_store_disables_store(self, tmp_path, capsys):
        store = str(tmp_path / "results.json")
        assert main(self._base("--store", store, "--no-store")) == 0
        out = capsys.readouterr()
        assert "store:" not in out.err
        assert not (tmp_path / "results.json").exists()

    def test_stream_prints_one_line_per_outcome(self, capsys):
        assert main(self._base("--stream")) == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l.startswith("[")]
        assert len(lines) == 3
        assert "[0] instance-0(seed=7):" in lines[0]
        assert "latency=" in lines[0]

    def test_stream_marks_cached_outcomes(self, tmp_path, capsys):
        store = str(tmp_path / "results.json")
        assert main(self._base("--store", store, "--stream")) == 0
        capsys.readouterr()
        assert main(self._base("--store", store, "--stream")) == 0
        out = capsys.readouterr().out
        assert out.count("[cached]") == 3

    def test_policy_flags_accepted(self, capsys):
        args = self._base(
            "--retries", "1", "--timeout", "30", "--backoff", "0.1", "--json"
        )
        assert main(args) == 0
        records = json.loads(capsys.readouterr().out)
        assert all(r["attempts"] == 1 for r in records)

    def test_stream_json_rejected(self, capsys):
        assert main(self._base("--stream", "--json")) == 2
        assert "mutually exclusive" in capsys.readouterr().out

    def test_bad_policy_is_usage_error(self, capsys):
        assert main(self._base("--retries", "-1")) == 2
        assert "error:" in capsys.readouterr().out
        assert main(self._base("--timeout", "0")) == 2
        assert "error:" in capsys.readouterr().out

    def test_corrupt_store_recovers_with_quarantine(self, tmp_path, capsys):
        # a truncated/corrupt store file is quarantined and the run
        # proceeds on a fresh store (it is a cache, not data)
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.warns(UserWarning, match="not valid JSON"):
            assert main(self._base("--store", str(bad))) == 0
        capsys.readouterr()
        assert (tmp_path / "bad.json.corrupt").read_text() == "{not json"

    def test_unknown_store_schema_is_usage_error(self, tmp_path, capsys):
        # an intact file with an unknown schema may belong to a newer
        # library version: refusing is correct, quarantining is not
        wrong_schema = tmp_path / "schema.json"
        wrong_schema.write_text('{"schema": 999, "records": {}}')
        assert main(self._base("--store", str(wrong_schema))) == 2
        assert "error:" in capsys.readouterr().out


class TestSweepCommand:
    def _spec(self, tmp_path, **overrides):
        spec = {
            "instances": [
                {
                    "scenario": "failure-mix",
                    "seed": 5,
                    "params": {"num_processors": 4, "stages": 3},
                }
            ],
            "solvers": ["greedy-min-fp"],
            "thresholds": [20.0, 30.0, 30.0, 45.0],
        }
        spec.update(overrides)
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        return str(path)

    def test_table_output(self, tmp_path, capsys):
        assert main(["sweep", self._spec(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "failure-mix[seed=5] x greedy-min-fp" in out
        assert "3 unique point(s)" in out  # the duplicate threshold deduped
        assert "latency" in out

    def test_json_output_shape(self, tmp_path, capsys):
        assert main(["sweep", self._spec(tmp_path), "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 1
        cell = records[0]
        assert cell["unique_thresholds"] == 3
        assert len(cell["outcomes"]) == 4
        assert cell["frontier"]

    def test_warm_start_flag_overrides_spec(self, tmp_path, capsys):
        assert (
            main(
                [
                    "sweep",
                    self._spec(tmp_path),
                    "--warm-start",
                    "chain",
                    "--json",
                ]
            )
            == 0
        )
        records = json.loads(capsys.readouterr().out)
        assert records[0]["chained"] is True

    def test_store_round_trip_and_stats(self, tmp_path, capsys):
        spec = self._spec(tmp_path)
        store = tmp_path / "results.json"
        assert main(["sweep", spec, "--store", str(store)]) == 0
        err = capsys.readouterr().err
        assert "3 write(s)" in err
        assert main(["sweep", spec, "--store", str(store)]) == 0
        err = capsys.readouterr().err
        assert "3 hit(s)" in err
        assert "100% hit rate" in err

    def test_store_max_records_caps_the_store(self, tmp_path, capsys):
        spec = self._spec(tmp_path)
        store = tmp_path / "capped.json"
        assert (
            main(
                [
                    "sweep",
                    spec,
                    "--store",
                    str(store),
                    "--store-max-records",
                    "2",
                ]
            )
            == 0
        )
        err = capsys.readouterr().err
        assert "1 eviction(s)" in err
        from repro.engine.store import JSONStore

        reopened = JSONStore(store)
        assert len(reopened) == 2
        reopened.close()

    def test_list_scenarios(self, capsys):
        assert main(["sweep", "--list-scenarios"]) == 0
        out = capsys.readouterr().out
        assert "edge-hub-cloud" in out
        assert "failure-mix" in out

    def test_missing_spec_is_usage_error(self, capsys):
        assert main(["sweep"]) == 2
        assert "SPEC.json" in capsys.readouterr().out

    def test_unreadable_spec_is_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["sweep", str(bad)]) == 2
        assert "error:" in capsys.readouterr().out

    def test_bad_plan_is_usage_error(self, tmp_path, capsys):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"instances": [], "solvers": []}))
        assert main(["sweep", str(path)]) == 2
        assert "error:" in capsys.readouterr().out

    def test_batch_store_max_records_flag(self, tmp_path, capsys):
        store = tmp_path / "batch.json"
        argv = [
            "batch",
            "--solver",
            "greedy-min-fp",
            "--instances",
            "4",
            "--threshold",
            "60.0",
            "--store",
            str(store),
            "--store-max-records",
            "2",
        ]
        assert main(argv) == 0
        capsys.readouterr()
        from repro.engine.store import JSONStore

        reopened = JSONStore(store)
        assert len(reopened) == 2
        reopened.close()

    def test_non_object_spec_is_usage_error(self, tmp_path, capsys):
        path = tmp_path / "array.json"
        path.write_text(json.dumps([1, 2, 3]))
        assert main(["sweep", str(path)]) == 2
        assert "must be a JSON object" in capsys.readouterr().out

    def test_non_object_instance_entry_is_usage_error(self, tmp_path, capsys):
        path = tmp_path / "badinst.json"
        path.write_text(
            json.dumps({"instances": [7], "solvers": ["greedy-min-fp"]})
        )
        assert main(["sweep", str(path)]) == 2
        assert "error:" in capsys.readouterr().out

    def test_solver_crash_is_surfaced_and_sets_exit_code(
        self, tmp_path, capsys
    ):
        """A crashed solver must never read as merely infeasible: the
        table shows the error and the exit code is non-zero."""
        from tests.engine.synthetic import (
            always_crash_min_fp,
            register_synthetic,
        )

        spec = self._spec(tmp_path)
        with register_synthetic("crashy-cli-sweep", always_crash_min_fp):
            bad = json.loads((tmp_path / "spec.json").read_text())
            bad["solvers"] = ["greedy-min-fp", "crashy-cli-sweep"]
            path = tmp_path / "crash.json"
            path.write_text(json.dumps(bad))
            assert main(["sweep", str(path)]) == 1
            out = capsys.readouterr().out
            assert "crash" in out
            assert "synthetic permanent crash" in out
        assert spec  # the clean spec still exists (fixture sanity)


class TestReplayCommand:
    def test_verify_matches(self, capsys):
        argv = [
            "replay", "verify",
            "--solver", "local-search-min-fp",
            "--stages", "4", "--processors", "3", "--seed", "0",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "match" in out
        assert "zero divergences" in out

    def test_record_then_run_round_trip(self, tmp_path, capsys):
        store = str(tmp_path / "rec.json")
        argv = [
            "replay", "record",
            "--store", store,
            "--solver", "greedy-min-fp",
            "--seed", "3",
            "--json",
        ]
        assert main(argv) == 0
        key = json.loads(capsys.readouterr().out)["key"]
        assert main(["replay", "run", key, "--store", store]) == 0
        assert "match" in capsys.readouterr().out

    def test_diff_identical_recordings_strict(self, tmp_path, capsys):
        store = str(tmp_path / "rec.json")
        argv = [
            "replay", "record", "--store", store,
            "--solver", "anneal-min-fp", "--seed", "1", "--json",
        ]
        assert main(argv) == 0
        key = json.loads(capsys.readouterr().out)["key"]
        assert main(
            ["replay", "diff", key, key, "--store", store, "--strict"]
        ) == 0
        assert "match" in capsys.readouterr().out

    def test_diff_perturbed_recording_reports_first_divergence(
        self, tmp_path, capsys
    ):
        store_path = tmp_path / "rec.json"
        argv = [
            "replay", "record", "--store", str(store_path),
            "--solver", "local-search-min-fp", "--seed", "0", "--json",
        ]
        assert main(argv) == 0
        key = json.loads(capsys.readouterr().out)["key"]

        # perturb one mid-log event in a *copy* of the recording (the
        # store hands back the live record object, so mutating in place
        # would corrupt the original too)
        import copy

        from repro.engine import JSONStore

        with JSONStore(store_path) as store:
            record = copy.deepcopy(store.get(key))
            events = [
                e for e in record["events"]
                if e["kind"] not in ("begin", "cache_stats")
            ]
            index = len(events) // 2
            target = events[index]
            target["rng_draws"] = (target.get("rng_draws") or 0) + 999
            store.put(key + "-perturbed", record)

        assert main(
            ["replay", "diff", key, key + "-perturbed", "--store",
             str(store_path)]
        ) == 1
        out = capsys.readouterr().out
        assert f"first divergence at event {index}" in out
        assert "rng_draws" in out

    def test_run_unknown_key_is_usage_error(self, tmp_path, capsys):
        store = str(tmp_path / "rec.json")
        from repro.engine import JSONStore

        JSONStore(store).close()
        assert main(["replay", "run", "nope", "--store", store]) == 2
        assert "no recording" in capsys.readouterr().out

    def test_missing_store_is_usage_error(self, capsys):
        assert main(["replay", "record"]) == 2
        assert "requires --store" in capsys.readouterr().out

    def test_wrong_key_count_is_usage_error(self, capsys):
        assert main(["replay", "diff", "onlyone", "--store", "x.json"]) == 2
        assert "key argument" in capsys.readouterr().out

    def test_non_recordable_solver_is_usage_error(self, capsys):
        argv = [
            "replay", "verify", "--solver", "alg1",
            "--platform", "fully-homogeneous",
        ]
        assert main(argv) == 2
        assert "does not support run recording" in capsys.readouterr().out

    def test_use_bulk_off_verify(self, capsys):
        argv = [
            "replay", "verify",
            "--solver", "single-interval-min-fp",
            "--use-bulk", "off",
        ]
        assert main(argv) == 0
        assert "match" in capsys.readouterr().out
