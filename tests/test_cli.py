"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert "repro-pipeline" in capsys.readouterr().out


class TestCommands:
    def test_examples_prints_paper_numbers(self, capsys):
        assert main(["examples"]) == 0
        out = capsys.readouterr().out
        assert "105" in out
        assert "0.64" in out
        assert "0.196637" in out

    def test_frontier(self, capsys):
        assert main(["frontier", "--stages", "2", "--processors", "3"]) == 0
        out = capsys.readouterr().out
        assert "Pareto frontier" in out

    @pytest.mark.parametrize(
        "algorithm", ["min-fp", "min-latency", "alg1", "alg2", "alg3", "alg4"]
    )
    def test_solve(self, algorithm, capsys):
        args = ["solve", algorithm, "--stages", "2", "--processors", "3"]
        if algorithm in ("alg1", "alg3"):
            args += ["--threshold", "1000"]
        elif algorithm in ("alg2", "alg4"):
            args += ["--threshold", "0.99"]
        assert main(args) == 0
        assert "SolverResult" in capsys.readouterr().out

    def test_simulate(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--stages",
                    "2",
                    "--processors",
                    "3",
                    "--datasets",
                    "5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "mean latency" in out

    def test_simulate_round_robin(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--stages",
                    "2",
                    "--processors",
                    "3",
                    "--datasets",
                    "6",
                    "--round-robin",
                ]
            )
            == 0
        )
        assert "throughput" in capsys.readouterr().out
