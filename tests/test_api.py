"""Public API surface tests: everything advertised must import and work."""

import importlib

import pytest

import repro


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.algorithms",
            "repro.algorithms.mono",
            "repro.algorithms.bicriteria",
            "repro.algorithms.heuristics",
            "repro.reductions",
            "repro.simulation",
            "repro.workloads",
            "repro.extensions",
            "repro.analysis",
            "repro.cli",
        ],
    )
    def test_submodules_export_all(self, module):
        mod = importlib.import_module(module)
        assert hasattr(mod, "__all__")
        for name in mod.__all__:
            assert hasattr(mod, name), f"{module}.{name}"

    def test_quickstart_from_docstring(self):
        """The module docstring's quickstart must actually run."""
        from repro import (
            IntervalMapping,
            PipelineApplication,
            Platform,
            evaluate,
        )

        app = PipelineApplication(works=(2, 2), volumes=(100, 100, 100))
        platform = Platform.communication_homogeneous(
            speeds=[2.0, 1.0],
            bandwidth=10.0,
            failure_probabilities=[0.2, 0.1],
        )
        mapping = IntervalMapping.single_interval(app.num_stages, {1, 2})
        ev = evaluate(mapping, app, platform)
        assert ev.latency > 0
        assert 0 <= ev.failure_probability <= 1

    def test_exception_hierarchy(self):
        from repro import (
            InfeasibleProblemError,
            InvalidApplicationError,
            InvalidMappingError,
            InvalidPlatformError,
            ReproError,
            SimulationError,
            SolverError,
        )

        for exc in (
            InvalidApplicationError,
            InvalidPlatformError,
            InvalidMappingError,
            InfeasibleProblemError,
            SolverError,
            SimulationError,
        ):
            assert issubclass(exc, ReproError)

    def test_public_items_documented(self):
        """Every public callable/class carries a docstring."""
        import inspect

        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{name} lacks a docstring"


class TestStableFacade:
    """``repro.api`` — the supported import surface (PR 8)."""

    def test_all_names_resolve(self):
        from repro import api

        for name in api.__all__:
            assert hasattr(api, name), f"repro.api.{name}"

    def test_schema_version_is_shared(self):
        """One version number across the facade, the sweep-spec dialect
        and the service protocol."""
        from repro import api
        from repro.engine.sweeps import SPEC_SCHEMA_VERSION
        from repro.service.protocol import PROTOCOL_VERSION

        assert isinstance(api.SCHEMA_VERSION, int)
        assert api.SCHEMA_VERSION == SPEC_SCHEMA_VERSION
        assert api.SCHEMA_VERSION == PROTOCOL_VERSION

    def test_facade_names_are_engine_objects(self):
        """The facade re-exports, it does not fork: identity must hold
        so isinstance checks work across both import paths."""
        import warnings

        from repro import api, engine

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            for name in (
                "solve",
                "run_batch",
                "iter_batch",
                "run_sweep",
                "iter_sweep",
                "open_store",
                "record_run",
                "replay_run",
                "BatchTask",
                "BatchPolicy",
                "ErrorKind",
                "SweepPlan",
            ):
                assert getattr(api, name) is getattr(engine, name), name

    def test_facade_names_are_simulation_objects(self):
        """Same identity guarantee for the simulation surface."""
        from repro import api, simulation
        from repro.simulation import dynamic

        for name in (
            "run_simulation",
            "iter_simulation",
            "resolve_mapping",
            "SimulationSpec",
            "SimulationResult",
            "EpochReport",
            "PlatformEvent",
            "RemapOutcome",
        ):
            assert getattr(api, name) is getattr(dynamic, name), name
            assert getattr(api, name) is getattr(simulation, name), name
        for name in (
            "simulate_stream",
            "realized_latency",
            "check_one_port",
            "validate_batch_fp",
            "estimate_failure_probability",
        ):
            assert getattr(api, name) is getattr(simulation, name), name

    def test_package_level_engine_access_warns(self):
        """The old ``repro.engine.<name>`` paths for facade-covered
        names keep working but emit a DeprecationWarning pointing at
        ``repro.api``; engine-internal names stay warning-free."""
        import warnings

        from repro import engine

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            engine.solve
        assert any(
            issubclass(w.category, DeprecationWarning)
            and "repro.api.solve" in str(w.message)
            for w in caught
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            engine.MemoryStore
            engine.register
            engine.GraphNode
        assert not caught

    def test_deep_module_paths_stay_warning_free(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.engine.batch import run_batch  # noqa: F401
            from repro.engine.registry import solve  # noqa: F401
            from repro.engine.sweeps import SweepPlan  # noqa: F401

    def test_plan_spec_round_trip_helpers(self):
        from repro import api

        spec = {
            "instances": [{"scenario": "edge-hub-cloud", "seed": 1}],
            "solvers": ["greedy-min-fp"],
            "thresholds": [30.0, 60.0],
        }
        plan = api.plan_from_spec(spec)
        wire = api.plan_to_spec(plan)
        assert wire["schema"] == api.SCHEMA_VERSION
        assert wire["kind"] == "sweep"
        assert api.plan_to_spec(api.plan_from_spec(wire)) == wire

    def test_sim_spec_round_trip_helpers(self):
        from repro import api

        spec = {
            "instance": {"scenario": "failure-mix", "seed": 1},
            "solver": "greedy-min-fp",
            "threshold": 50.0,
        }
        sim = api.sim_from_spec(spec)
        wire = api.sim_to_spec(sim)
        assert wire["schema"] == api.SCHEMA_VERSION
        assert wire["kind"] == "simulation"
        assert api.sim_to_spec(api.sim_from_spec(wire)) == wire

    def test_load_spec_dispatches_both_kinds(self, tmp_path):
        import json

        from repro import api

        sweep = {
            "instances": [{"scenario": "failure-mix", "seed": 1}],
            "solvers": ["greedy-min-fp"],
            "thresholds": [50.0],
        }
        sim = {
            "kind": "simulation",
            "instance": {"scenario": "failure-mix", "seed": 1},
            "solver": "greedy-min-fp",
            "threshold": 50.0,
        }
        assert isinstance(api.load_spec(sweep), api.SweepPlan)
        assert isinstance(api.load_spec(sim), api.SimulationSpec)
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(sim))
        assert isinstance(api.load_spec(path), api.SimulationSpec)
        assert isinstance(api.load_spec(str(path)), api.SimulationSpec)

    def test_solve_through_facade(self):
        from repro import api
        from tests.helpers import make_instance

        app, plat = make_instance("comm-homogeneous", 3, 3, seed=5)
        result = api.solve("greedy-min-fp", app, plat, threshold=60.0)
        assert result.latency <= 60.0

    def test_deep_import_paths_keep_working(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.engine import run_sweep  # noqa: F401
        from repro.engine.batch import run_batch  # noqa: F401
        from repro.engine.sweeps import SweepPlan  # noqa: F401
        from repro.simulation import run_simulation  # noqa: F401
        from repro.simulation.dynamic import iter_simulation  # noqa: F401
