"""Public API surface tests: everything advertised must import and work."""

import importlib

import pytest

import repro


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.algorithms",
            "repro.algorithms.mono",
            "repro.algorithms.bicriteria",
            "repro.algorithms.heuristics",
            "repro.reductions",
            "repro.simulation",
            "repro.workloads",
            "repro.extensions",
            "repro.analysis",
            "repro.cli",
        ],
    )
    def test_submodules_export_all(self, module):
        mod = importlib.import_module(module)
        assert hasattr(mod, "__all__")
        for name in mod.__all__:
            assert hasattr(mod, name), f"{module}.{name}"

    def test_quickstart_from_docstring(self):
        """The module docstring's quickstart must actually run."""
        from repro import (
            IntervalMapping,
            PipelineApplication,
            Platform,
            evaluate,
        )

        app = PipelineApplication(works=(2, 2), volumes=(100, 100, 100))
        platform = Platform.communication_homogeneous(
            speeds=[2.0, 1.0],
            bandwidth=10.0,
            failure_probabilities=[0.2, 0.1],
        )
        mapping = IntervalMapping.single_interval(app.num_stages, {1, 2})
        ev = evaluate(mapping, app, platform)
        assert ev.latency > 0
        assert 0 <= ev.failure_probability <= 1

    def test_exception_hierarchy(self):
        from repro import (
            InfeasibleProblemError,
            InvalidApplicationError,
            InvalidMappingError,
            InvalidPlatformError,
            ReproError,
            SimulationError,
            SolverError,
        )

        for exc in (
            InvalidApplicationError,
            InvalidPlatformError,
            InvalidMappingError,
            InfeasibleProblemError,
            SolverError,
            SimulationError,
        ):
            assert issubclass(exc, ReproError)

    def test_public_items_documented(self):
        """Every public callable/class carries a docstring."""
        import inspect

        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{name} lacks a docstring"
