"""Batch executor: parallel == serial, deterministic seeding, isolation."""

import pytest

from repro import api
from repro.analysis.frontier import sweep_frontier
from repro.exceptions import SolverError
from repro.simulation import validate_batch_fp
from repro.workloads.reference import figure5_instance

from tests.helpers import make_instance


def _mixed_tasks():
    tasks = [
        api.BatchTask(
            "greedy-min-fp",
            *make_instance("comm-homogeneous", 3, 4, seed),
            threshold=80.0,
            tag=f"greedy-{seed}",
        )
        for seed in range(4)
    ]
    tasks += [
        api.BatchTask(
            "local-search-min-latency",
            *make_instance("fully-heterogeneous", 3, 3, seed),
            threshold=0.95,
            opts={"restarts": 2, "max_steps": 40},
            tag=f"ls-{seed}",
        )
        for seed in range(3)
    ]
    tasks.append(
        api.BatchTask(
            "theorem1-min-fp",
            *make_instance("fully-homogeneous", 2, 3, 9),
            tag="t1",
        )
    )
    return tasks


def _outcome_key(outcome):
    if outcome.result is None:
        return (outcome.index, outcome.tag, outcome.error)
    return (
        outcome.index,
        outcome.tag,
        outcome.result.latency,
        outcome.result.failure_probability,
        outcome.result.mapping,
    )


class TestRunBatch:
    def test_parallel_identical_to_serial(self):
        tasks = _mixed_tasks()
        serial = api.run_batch(tasks, seed=5)
        parallel = api.run_batch(tasks, workers=3, seed=5)
        assert [_outcome_key(o) for o in serial] == [
            _outcome_key(o) for o in parallel
        ]

    def test_deterministic_across_runs(self):
        tasks = _mixed_tasks()
        first = api.run_batch(tasks, workers=2, seed=1)
        second = api.run_batch(tasks, workers=2, seed=1)
        assert [_outcome_key(o) for o in first] == [
            _outcome_key(o) for o in second
        ]

    def test_outcomes_keep_input_order_and_tasks(self):
        tasks = _mixed_tasks()
        outcomes = api.run_batch(tasks, workers=2)
        assert [o.index for o in outcomes] == list(range(len(tasks)))
        for task, outcome in zip(tasks, outcomes):
            assert outcome.task.solver == task.solver
            assert outcome.tag == task.tag
            assert outcome.elapsed >= 0.0

    def test_explicit_opts_seed_wins_over_base_seed(self):
        app, plat = make_instance("comm-homogeneous", 3, 4, 2)
        task = api.BatchTask(
            "local-search-min-fp",
            app,
            plat,
            threshold=80.0,
            opts={"seed": 123},
        )
        a = api.run_batch([task], seed=1)[0]
        b = api.run_batch([task], seed=999)[0]
        assert _outcome_key(a) == _outcome_key(b)

    def test_infeasible_task_is_isolated(self):
        app, plat = make_instance("comm-homogeneous", 3, 4, 3)
        tasks = [
            api.BatchTask("greedy-min-fp", app, plat, threshold=80.0),
            api.BatchTask("greedy-min-fp", app, plat, threshold=1e-9),
            api.BatchTask("greedy-min-fp", app, plat, threshold=80.0),
        ]
        outcomes = api.run_batch(tasks, workers=2)
        assert outcomes[0].ok and outcomes[2].ok
        assert not outcomes[1].ok
        assert "InfeasibleProblemError" in outcomes[1].error

    def test_malformed_batch_rejected_upfront(self):
        app, plat = make_instance("comm-homogeneous", 2, 2, 0)
        with pytest.raises(SolverError, match="unknown solver"):
            api.run_batch([api.BatchTask("nope", app, plat)])
        with pytest.raises(SolverError, match="requires a threshold"):
            api.run_batch([api.BatchTask("greedy-min-fp", app, plat)])
        with pytest.raises(SolverError, match="does not take a threshold"):
            api.run_batch(
                [api.BatchTask("theorem1-min-fp", app, plat, threshold=5.0)]
            )

    def test_out_of_domain_task_is_isolated_not_fatal(self):
        # the batch path dispatches through registry.solve, so domain
        # violations get the same validation as direct solves but stay
        # per-task
        app, plat = make_instance("comm-homogeneous", 2, 3, 0)
        ok_task = api.BatchTask("greedy-min-fp", app, plat, threshold=80.0)
        bad_task = api.BatchTask("alg1", app, plat, threshold=80.0)
        outcomes = api.run_batch([ok_task, bad_task])
        assert outcomes[0].ok
        assert not outcomes[1].ok
        assert "does not support" in outcomes[1].error

    def test_empty_batch(self):
        assert api.run_batch([]) == []


class TestMaxBuffered:
    """``iter_batch(in_order=True, max_buffered=N)`` bounds the buffer."""

    def test_rejects_non_positive(self):
        app, plat = make_instance("comm-homogeneous", 2, 2, 0)
        task = api.BatchTask("greedy-min-fp", app, plat, threshold=80.0)
        with pytest.raises(SolverError, match="max_buffered"):
            list(api.iter_batch([task], max_buffered=0))

    def test_windowed_results_identical_to_unbounded(self):
        tasks = _mixed_tasks()
        unbounded = list(api.iter_batch(tasks, workers=2, seed=5))
        windowed = list(
            api.iter_batch(tasks, workers=2, seed=5, max_buffered=2)
        )
        assert [_outcome_key(o) for o in unbounded] == [
            _outcome_key(o) for o in windowed
        ]

    def test_stalled_head_task_bounds_dispatch(self, tmp_path):
        """With the head task deliberately stalled, at most
        ``max_buffered`` later tasks ever start — the unbounded path
        would run all of them and buffer their outcomes."""
        import threading
        import time

        from tests.engine.synthetic import (
            counting_min_fp,
            gated_min_fp,
            invocations,
            register_synthetic,
        )

        gate = tmp_path / "gate"
        gated_counter = tmp_path / "gated-count"
        fast_counter = tmp_path / "fast-count"
        app, plat = make_instance("comm-homogeneous", 3, 4, 0)
        tasks = [
            api.BatchTask(
                "gated-min-fp",
                app,
                plat,
                threshold=80.0,
                opts={
                    "gate": str(gate),
                    "counter_file": str(gated_counter),
                },
            )
        ]
        tasks += [
            api.BatchTask(
                "counting-min-fp",
                app,
                plat,
                threshold=80.0,
                opts={"counter_file": str(fast_counter)},
                tag=f"fast-{i}",
            )
            for i in range(7)
        ]

        outcomes = []

        def consume():
            for outcome in api.iter_batch(
                tasks, workers=2, max_buffered=2
            ):
                outcomes.append(outcome)

        with register_synthetic("gated-min-fp", gated_min_fp):
            with register_synthetic("counting-min-fp", counting_min_fp):
                consumer = threading.Thread(target=consume)
                consumer.start()
                try:
                    # wait for the stalled head task to actually start
                    deadline = time.monotonic() + 5.0
                    while (
                        invocations(gated_counter) == 0
                        and time.monotonic() < deadline
                    ):
                        time.sleep(0.01)
                    assert invocations(gated_counter) == 1
                    # give an over-eager dispatcher time to misbehave
                    time.sleep(0.3)
                    assert invocations(fast_counter) <= 2
                finally:
                    gate.write_text("open")  # release the head task
                    consumer.join(timeout=20.0)
                assert not consumer.is_alive()

        assert [o.index for o in outcomes] == list(range(len(tasks)))
        assert all(o.ok for o in outcomes)
        assert invocations(fast_counter) == 7


class TestThresholdSweep:
    def test_sweep_orders_and_tags(self):
        fig5 = figure5_instance()
        thresholds = [10.0, 22.0, 50.0, 200.0]
        outcomes = api.threshold_sweep(
            "single-interval-min-fp",
            fig5.application,
            fig5.platform,
            thresholds,
        )
        assert len(outcomes) == len(thresholds)
        assert outcomes[1].tag == "threshold=22"
        # FP can only improve as the latency budget loosens
        fps = [o.result.failure_probability for o in outcomes if o.ok]
        assert fps == sorted(fps, reverse=True)

    def test_sweep_parallel_equals_serial(self):
        app, plat = make_instance("comm-homogeneous", 4, 4, 21)
        thresholds = [20.0, 40.0, 60.0, 80.0, 100.0, 150.0]
        serial = api.threshold_sweep(
            "greedy-min-fp", app, plat, thresholds
        )
        parallel = api.threshold_sweep(
            "greedy-min-fp", app, plat, thresholds, workers=3
        )
        assert [_outcome_key(o) for o in serial] == [
            _outcome_key(o) for o in parallel
        ]


class TestFrontierIntegration:
    def test_named_solver_matches_callable(self):
        from repro.algorithms.heuristics import greedy_minimize_fp

        app, plat = make_instance("comm-homogeneous", 4, 4, 31)
        by_name = sweep_frontier(app, plat, "greedy-min-fp", num_points=8)
        by_callable = sweep_frontier(app, plat, greedy_minimize_fp, num_points=8)
        assert [(p.latency, p.failure_probability) for p in by_name] == [
            (p.latency, p.failure_probability) for p in by_callable
        ]

    def test_parallel_sweep_matches_serial(self):
        app, plat = make_instance("comm-homogeneous", 4, 4, 31)
        serial = sweep_frontier(app, plat, "greedy-min-fp", num_points=8)
        parallel = sweep_frontier(
            app, plat, "greedy-min-fp", num_points=8, workers=2
        )
        assert [(p.latency, p.failure_probability) for p in serial] == [
            (p.latency, p.failure_probability) for p in parallel
        ]

    def test_parallel_needs_registered_name(self):
        from repro.algorithms.heuristics import greedy_minimize_fp

        app, plat = make_instance("comm-homogeneous", 3, 3, 1)
        with pytest.raises(ValueError, match="registered solver name"):
            sweep_frontier(app, plat, greedy_minimize_fp, workers=4)


class TestMonteCarloCrossCheck:
    def test_validate_batch_fp_agrees_with_analytic(self):
        pytest.importorskip("numpy", exc_type=ImportError)
        tasks = [
            api.BatchTask(
                "greedy-min-fp",
                *make_instance("comm-homogeneous", 3, 4, seed),
                threshold=80.0,
            )
            for seed in range(3)
        ]
        outcomes = api.run_batch(tasks, workers=2)
        reports = validate_batch_fp(outcomes, trials=20_000, seed=0)
        assert len(reports) == sum(1 for o in outcomes if o.ok)
        for report in reports:
            assert 0.0 <= report["analytic"] <= 1.0
            # 5-sigma gate: loose enough to be stable, tight enough to
            # catch a wrong formula
            assert abs(report["z"]) < 5.0
