"""Sweep-spec schema versioning: strict keys behind the version field."""

import pytest

from repro.engine.sweeps import SPEC_SCHEMA_VERSION, SweepPlan
from repro.exceptions import ReproError


def spec(**overrides):
    base = {
        "instances": [{"scenario": "edge-hub-cloud", "seed": 1}],
        "solvers": ["greedy-min-fp"],
        "thresholds": [30.0, 60.0],
    }
    base.update(overrides)
    return base


class TestSchemaField:
    def test_to_spec_stamps_current_schema(self):
        plan = SweepPlan.from_spec(spec())
        assert plan.to_spec()["schema"] == SPEC_SCHEMA_VERSION

    def test_stamped_spec_round_trips(self):
        plan = SweepPlan.from_spec(spec())
        again = SweepPlan.from_spec(plan.to_spec())
        assert again.to_spec() == plan.to_spec()

    def test_versioned_spec_loads(self):
        plan = SweepPlan.from_spec(spec(schema=SPEC_SCHEMA_VERSION))
        assert len(plan.thresholds) == 2

    @pytest.mark.parametrize("schema", [0, SPEC_SCHEMA_VERSION + 1, -1])
    def test_unsupported_schema_rejected(self, schema):
        with pytest.raises(ReproError, match="not supported"):
            SweepPlan.from_spec(spec(schema=schema))

    @pytest.mark.parametrize("schema", [True, "1", 1.0])
    def test_non_integer_schema_rejected(self, schema):
        with pytest.raises(ReproError, match="integer"):
            SweepPlan.from_spec(spec(schema=schema))


class TestStrictKeys:
    def test_typo_rejected_by_name_when_versioned(self):
        with pytest.raises(ReproError) as err:
            SweepPlan.from_spec(spec(schema=1, warmstart="chain"))
        message = str(err.value)
        assert "'warmstart'" in message
        assert "warm_start" in message  # the accepted keys are listed

    def test_multiple_unknown_keys_all_named(self):
        with pytest.raises(ReproError) as err:
            SweepPlan.from_spec(spec(schema=1, bogus=1, extra=2))
        assert "'bogus'" in str(err.value)
        assert "'extra'" in str(err.value)

    def test_legacy_spec_without_schema_stays_lenient(self):
        # pre-versioning specs silently ignored unknown keys; they
        # must keep loading unchanged
        plan = SweepPlan.from_spec(spec(warmstart="chain"))
        assert plan.warm_start == "off"

    def test_all_known_keys_accepted_when_versioned(self):
        plan = SweepPlan.from_spec(
            spec(
                schema=1,
                warm_start="chain",
                one_pass_exhaustive=False,
                grid={"num_points": 3},
                thresholds=None,
            )
        )
        assert plan.warm_start == "chain"
