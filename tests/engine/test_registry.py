"""Registry coverage and round-trip equivalence with direct solver calls.

Every registered solver is exercised through ``api.solve`` on the
paper's Figure 3/4 and Figure 5 reference instances (when its platform
domain admits them, with synthetic stand-ins for the Fully Homogeneous /
failure-homogeneous domains) and must reproduce its direct call exactly.
"""

import math

import pytest

from repro import api, engine
from repro.algorithms import bicriteria, heuristics, mono
from repro.engine.registry import Objective, get_solver
from repro.exceptions import SolverError
from repro.workloads.reference import figure5_instance, figure34_instance

from tests.helpers import make_instance

FIG34 = figure34_instance()
FIG5 = figure5_instance()
FULLY_HOM = make_instance("fully-homogeneous", n=3, m=4, seed=11)
COMM_HOM_FAILHOM = make_instance("comm-homogeneous-failhom", n=3, m=4, seed=12)

#: reference instances as (label, application, platform, latency_bound)
INSTANCES = [
    ("fig34", FIG34.application, FIG34.platform, 1000.0),
    ("fig5", FIG5.application, FIG5.platform, FIG5.latency_threshold),
    ("fully-hom", *FULLY_HOM, 1000.0),
    ("comm-hom-failhom", *COMM_HOM_FAILHOM, 1000.0),
]

#: solvers whose defaults are nondeterministic unless a seed is pinned
PINNED_OPTS = {"one-to-one-local-search": {"seed": 7}}


def _cases():
    for name in api.solver_names():
        spec = get_solver(name)
        for label, app, plat, latency_bound in INSTANCES:
            if not spec.supports(plat):
                continue
            if spec.needs_threshold:
                threshold = (
                    latency_bound
                    if spec.objective is Objective.MIN_FP
                    else 1.0
                )
            else:
                threshold = None
            yield pytest.param(
                name, app, plat, threshold, id=f"{name}-{label}"
            )


@pytest.mark.parametrize("name,app,plat,threshold", list(_cases()))
def test_round_trip_matches_direct_call(name, app, plat, threshold):
    spec = get_solver(name)
    opts = PINNED_OPTS.get(name, {})
    if spec.needs_threshold:
        direct = spec.func(app, plat, threshold, **opts)
        via = api.solve(name, app, plat, threshold=threshold, **opts)
    else:
        direct = spec.func(app, plat, **opts)
        via = api.solve(name, app, plat, **opts)
    assert via.solver == direct.solver
    assert via.latency == direct.latency
    assert via.mapping == direct.mapping
    if math.isnan(direct.failure_probability):
        assert math.isnan(via.failure_probability)
    else:
        assert via.failure_probability == direct.failure_probability
    assert via.optimal == direct.optimal


def test_every_instance_covered_by_some_case():
    """Each reference instance must exercise at least a handful of solvers."""
    ids = [p.id for p in _cases()]
    for label in ("fig34", "fig5", "fully-hom", "comm-hom-failhom"):
        assert sum(1 for i in ids if i.endswith(label)) >= 5, label


def test_registry_covers_every_public_solver():
    """Each solver exported by repro.algorithms is registered."""
    expected = {
        mono.minimize_failure_probability,
        mono.minimize_latency_comm_homogeneous,
        mono.minimize_latency_general,
        mono.minimize_latency_general_bruteforce,
        mono.minimize_latency_one_to_one_exact,
        mono.minimize_latency_one_to_one_greedy,
        mono.one_to_one_local_search,
        mono.minimize_latency_interval_exact,
        mono.minimize_latency_interval_heuristic,
        bicriteria.algorithm1_minimize_fp,
        bicriteria.algorithm2_minimize_latency,
        bicriteria.algorithm3_minimize_fp,
        bicriteria.algorithm4_minimize_latency,
        bicriteria.exhaustive_minimize_fp,
        bicriteria.exhaustive_minimize_latency,
        bicriteria.branch_and_bound_minimize_fp,
        bicriteria.branch_and_bound_minimize_latency,
        heuristics.single_interval_minimize_fp,
        heuristics.single_interval_minimize_latency,
        heuristics.greedy_minimize_fp,
        heuristics.greedy_minimize_latency,
        heuristics.local_search_minimize_fp,
        heuristics.local_search_minimize_latency,
        heuristics.anneal_minimize_fp,
        heuristics.anneal_minimize_latency,
    }
    registered = {get_solver(n).func for n in api.solver_names()}
    missing = {f.__name__ for f in expected - registered}
    assert not missing, f"unregistered solvers: {sorted(missing)}"


def test_specs_filterable_by_objective_and_platform():
    min_fp = list(api.solver_specs(objective=Objective.MIN_FP))
    assert {"alg1", "alg3", "theorem1-min-fp"} <= {s.name for s in min_fp}
    on_fig34 = list(api.solver_specs(platform=FIG34.platform))
    names = {s.name for s in on_fig34}
    assert "alg1" not in names  # fully heterogeneous platform
    assert "theorem2-min-latency" not in names
    assert "exhaustive-min-fp" in names
    exact = {s.name for s in api.solver_specs(exact=True)}
    assert "greedy-min-fp" not in exact
    assert "bnb-min-fp" in exact


class TestDispatchErrors:
    def test_unknown_solver(self):
        with pytest.raises(SolverError, match="unknown solver"):
            api.solve("no-such-solver", FIG34.application, FIG34.platform)

    def test_missing_threshold(self):
        with pytest.raises(SolverError, match="requires a latency threshold"):
            api.solve("greedy-min-fp", FIG5.application, FIG5.platform)

    def test_superfluous_threshold(self):
        with pytest.raises(SolverError, match="does not take a threshold"):
            api.solve(
                "theorem1-min-fp",
                FIG5.application,
                FIG5.platform,
                threshold=10.0,
            )

    def test_platform_outside_domain(self):
        with pytest.raises(SolverError, match="does not support"):
            api.solve(
                "alg1", FIG34.application, FIG34.platform, threshold=10.0
            )

    def test_failure_heterogeneous_rejected_for_alg3(self):
        # fig5 is Communication Homogeneous but failure heterogeneous
        with pytest.raises(SolverError, match="does not support"):
            api.solve(
                "alg3", FIG5.application, FIG5.platform, threshold=22.0
            )

    def test_duplicate_registration_rejected(self):
        spec = get_solver("alg1")
        with pytest.raises(ValueError, match="already registered"):
            engine.register(spec)
