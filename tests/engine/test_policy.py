"""Error taxonomy, retry policy and timeout guard."""

import time

import pytest

from repro.engine.policy import (
    BatchPolicy,
    ErrorKind,
    TaskTimeoutError,
    classify_exception,
    run_with_timeout,
)
from repro.exceptions import (
    InfeasibleProblemError,
    InvalidApplicationError,
    InvalidMappingError,
    InvalidPlatformError,
    SolverError,
)


class TestClassification:
    @pytest.mark.parametrize(
        ("exc", "kind"),
        [
            (InfeasibleProblemError("no mapping"), ErrorKind.INFEASIBLE),
            (SolverError("out of domain"), ErrorKind.UNSUPPORTED),
            (InvalidApplicationError("bad app"), ErrorKind.INVALID),
            (InvalidPlatformError("bad plat"), ErrorKind.INVALID),
            (InvalidMappingError("bad map"), ErrorKind.INVALID),
            (TaskTimeoutError("too slow"), ErrorKind.TIMEOUT),
            (TypeError("bad opts"), ErrorKind.CRASH),
            (ZeroDivisionError("bug"), ErrorKind.CRASH),
            (RuntimeError("anything"), ErrorKind.CRASH),
        ],
    )
    def test_classify(self, exc, kind):
        assert classify_exception(exc) is kind

    def test_deterministic_partition(self):
        deterministic = {k for k in ErrorKind if k.deterministic}
        assert deterministic == {
            ErrorKind.INFEASIBLE,
            ErrorKind.UNSUPPORTED,
            ErrorKind.INVALID,
        }
        assert not ErrorKind.TIMEOUT.deterministic
        assert not ErrorKind.CRASH.deterministic


class TestBatchPolicy:
    def test_defaults(self):
        policy = BatchPolicy()
        assert policy.retries == 0
        assert policy.timeout is None
        assert policy.retry_on == frozenset(
            {ErrorKind.TIMEOUT, ErrorKind.CRASH}
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"retries": -1},
            {"timeout": 0.0},
            {"timeout": -5.0},
            {"backoff": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            BatchPolicy(**kwargs)

    def test_should_retry_respects_budget_and_kind(self):
        policy = BatchPolicy(retries=2)
        assert policy.should_retry(ErrorKind.CRASH, attempt=1)
        assert policy.should_retry(ErrorKind.TIMEOUT, attempt=2)
        assert not policy.should_retry(ErrorKind.CRASH, attempt=3)
        # deterministic verdicts are never retried
        assert not policy.should_retry(ErrorKind.INFEASIBLE, attempt=1)
        assert not policy.should_retry(ErrorKind.UNSUPPORTED, attempt=1)

    def test_deterministic_kind_not_retried_even_if_requested(self):
        policy = BatchPolicy(
            retries=5, retry_on=frozenset({ErrorKind.INFEASIBLE})
        )
        assert not policy.should_retry(ErrorKind.INFEASIBLE, attempt=1)

    def test_exponential_backoff(self):
        policy = BatchPolicy(retries=3, backoff=0.5)
        assert policy.delay(1) == 0.5
        assert policy.delay(2) == 1.0
        assert policy.delay(3) == 2.0
        assert BatchPolicy(retries=3).delay(1) == 0.0

    def test_policy_is_hashable_and_picklable(self):
        import pickle

        policy = BatchPolicy(retries=1, timeout=2.0, backoff=0.1)
        assert pickle.loads(pickle.dumps(policy)) == policy
        hash(policy)


class TestRunWithTimeout:
    def test_fast_call_passes_through(self):
        assert run_with_timeout(lambda: 42, timeout=5.0) == 42
        assert run_with_timeout(lambda: "ok", timeout=None) == "ok"

    def test_slow_call_times_out(self):
        with pytest.raises(TaskTimeoutError):
            run_with_timeout(lambda: time.sleep(2.0), timeout=0.05)

    def test_timer_is_cleared_after_success(self):
        run_with_timeout(lambda: None, timeout=0.05)
        time.sleep(0.1)  # would fire the stale alarm if it survived

    def test_exception_passes_through_and_clears_timer(self):
        with pytest.raises(ValueError):
            run_with_timeout(
                lambda: (_ for _ in ()).throw(ValueError("x")), timeout=5.0
            )
        time.sleep(0.01)

    def test_nested_timeouts_outer_still_fires(self):
        # the inner guard must re-arm the outer timer on exit instead of
        # zeroing it: an outer policy wrapping work that itself uses
        # run_with_timeout would otherwise never time out
        def outer():
            run_with_timeout(lambda: None, timeout=5.0)  # fast inner guard
            time.sleep(2.0)  # then overrun the *outer* budget

        with pytest.raises(TaskTimeoutError):
            run_with_timeout(outer, timeout=0.2)

    def test_nested_timeouts_inner_fires_first(self):
        def outer():
            run_with_timeout(lambda: time.sleep(2.0), timeout=0.05)

        with pytest.raises(TaskTimeoutError):
            run_with_timeout(outer, timeout=5.0)
        time.sleep(0.1)  # the outer timer must be fully cleared by now

    def test_preexisting_user_itimer_is_restored(self):
        import signal

        fired = []
        previous_handler = signal.signal(
            signal.SIGALRM, lambda signum, frame: fired.append(signum)
        )
        try:
            # a caller's own itimer, armed before the guard runs
            signal.setitimer(signal.ITIMER_REAL, 0.3)
            assert run_with_timeout(lambda: 7, timeout=0.05) == 7
            # the guard exited without firing; the user timer must still
            # be counting down with (roughly) its remaining time
            delay, _ = signal.getitimer(signal.ITIMER_REAL)
            assert 0.0 < delay <= 0.3
            time.sleep(0.4)
            assert fired  # the user alarm eventually fired
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous_handler)
