"""Concurrent store access: WAL mode, busy timeouts, ThreadSafeStore."""

import sqlite3
import threading

import pytest

from repro.engine.store import (
    JSONStore,
    MemoryStore,
    SQLiteStore,
    ThreadSafeStore,
    open_store,
)
from repro.exceptions import ReproError


def record(n):
    return {"solver": "s", "result": {"value": n}}


class TestSQLiteConcurrency:
    def test_wal_mode_enabled_by_default(self, tmp_path):
        store = SQLiteStore(tmp_path / "r.sqlite")
        try:
            mode = store._conn.execute(
                "PRAGMA journal_mode"
            ).fetchone()[0]
            assert mode.lower() == "wal"
            timeout = store._conn.execute(
                "PRAGMA busy_timeout"
            ).fetchone()[0]
            assert timeout == 30_000
        finally:
            store.close()

    def test_wal_opt_out(self, tmp_path):
        store = SQLiteStore(tmp_path / "r.sqlite", wal=False)
        try:
            mode = store._conn.execute(
                "PRAGMA journal_mode"
            ).fetchone()[0]
            assert mode.lower() != "wal"
        finally:
            store.close()

    def test_custom_busy_timeout(self, tmp_path):
        store = SQLiteStore(tmp_path / "r.sqlite", busy_timeout=2.5)
        try:
            timeout = store._conn.execute(
                "PRAGMA busy_timeout"
            ).fetchone()[0]
            assert timeout == 2_500
        finally:
            store.close()

    def test_usable_from_other_threads(self, tmp_path):
        """check_same_thread=False: the service's worker threads all
        drive one connection (serialised by ThreadSafeStore)."""
        store = ThreadSafeStore(SQLiteStore(tmp_path / "r.sqlite"))
        errors = []

        def work(base):
            try:
                for i in range(20):
                    store.put(f"k-{base}-{i}", record(i))
                    assert store.get(f"k-{base}-{i}") is not None
            except Exception as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=(t,)) for t in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)
        store.close()
        assert errors == []

    def test_two_connections_interleaved_writes(self, tmp_path):
        """Two independent connections to one database file (two
        service processes sharing a store) must not raise
        'database is locked' thanks to WAL + busy_timeout."""
        path = tmp_path / "shared.sqlite"
        first, second = SQLiteStore(path), SQLiteStore(path)
        errors = []

        def work(store, base):
            try:
                for i in range(50):
                    store.put(f"k-{base}-{i}", record(i))
                    store.get(f"k-{1 - base}-{i}")  # cross-reads
            except sqlite3.OperationalError as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=(store, base))
            for base, store in enumerate((first, second))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)
        try:
            assert errors == []
            assert len(first) == 100
        finally:
            first.close()
            second.close()


class TestThreadSafeStore:
    def test_delegates_and_shares_stats(self):
        inner = MemoryStore()
        store = ThreadSafeStore(inner)
        store.put("a", record(1))
        assert "a" in store
        assert len(store) == 1
        assert list(store.keys()) == ["a"]
        assert store.get("a") == record(1)
        assert store.get("missing") is None
        assert store.peek("a") == record(1)
        # one stats object: hits/misses visible on both handles
        assert store.stats is inner.stats
        assert inner.stats.hits == 1
        assert inner.stats.misses == 1
        assert inner.stats.writes == 1

    def test_rejects_double_wrapping(self):
        wrapped = ThreadSafeStore(MemoryStore())
        with pytest.raises(ReproError, match="already"):
            ThreadSafeStore(wrapped)

    def test_lru_cap_respected_under_threads(self):
        store = ThreadSafeStore(MemoryStore(max_records=25))
        errors = []

        def work(base):
            try:
                for i in range(100):
                    key = f"k-{base}-{i % 40}"
                    if store.get(key) is None:
                        store.put(key, record(i))
            except Exception as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=(t,)) for t in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)
        assert errors == []
        assert len(store) <= 25
        stats = store.stats
        assert stats.lookups == stats.hits + stats.misses
        assert stats.evictions >= stats.writes - 25

    def test_prune_under_lock(self):
        store = ThreadSafeStore(MemoryStore())
        for i in range(10):
            store.put(f"k-{i}", record(i))
        removed = store.prune(max_records=4)
        assert removed == 6
        assert len(store) == 4


class TestOpenStoreThreadsafe:
    @pytest.mark.parametrize(
        "name", ["results.sqlite", "results.json", ":memory:"]
    )
    def test_wraps_every_backend(self, tmp_path, name):
        path = name if name == ":memory:" else tmp_path / name
        store = open_store(path, threadsafe=True)
        try:
            assert isinstance(store, ThreadSafeStore)
            store.put("k", record(0))
            assert store.get("k") == record(0)
        finally:
            store.close()

    def test_inner_backend_type(self, tmp_path):
        store = open_store(tmp_path / "r.json", threadsafe=True)
        try:
            assert isinstance(store.inner, JSONStore)
        finally:
            store.close()

    def test_default_stays_unwrapped(self, tmp_path):
        store = open_store(tmp_path / "r.sqlite")
        try:
            assert isinstance(store, SQLiteStore)
        finally:
            store.close()
