"""Run recording: pure observation, stable keys, store round-trips."""

import random

import pytest

from repro.core.serialization import canonical_json
from repro.api import RunRecording, get_solver, record_run, solve
from repro.engine import JSONStore, MemoryStore, instance_key, recording_key
from repro.engine.recorder import _CountingRandom
from repro.exceptions import ReproError, SolverError

from tests.helpers import make_instance

RECORDABLE = [
    "single-interval-min-fp",
    "greedy-min-fp",
    "local-search-min-fp",
    "anneal-min-fp",
    "exhaustive-min-fp",
]


@pytest.fixture
def instance():
    return make_instance("comm-homogeneous", 4, 3, 0)


class TestCountingRandom:
    def test_sequence_identical_to_plain_random(self):
        """The counter must be pure observation: same draws as Random."""
        plain, counting = random.Random(42), _CountingRandom(42)
        for _ in range(50):
            assert plain.random() == counting.random()
        assert plain.randint(0, 100) == counting.randint(0, 100)
        assert plain.choice(range(17)) == counting.choice(range(17))
        items_a, items_b = list(range(20)), list(range(20))
        plain.shuffle(items_a)
        counting.shuffle(items_b)
        assert items_a == items_b
        assert plain.sample(range(30), 5) == counting.sample(range(30), 5)
        assert counting.draws > 50

    def test_draw_counter_starts_at_zero(self):
        rng = _CountingRandom(0)
        assert rng.draws == 0
        rng.random()
        assert rng.draws == 1


class TestRecordRun:
    @pytest.mark.parametrize("solver", RECORDABLE)
    def test_recorded_result_identical_to_plain_run(self, solver, instance):
        """Recording never changes the trajectory or the result."""
        app, plat = instance
        spec = get_solver(solver)
        opts = {"seed": 0} if spec.seeded else {}
        plain = solve(solver, app, plat, 40.0, **opts)
        recorded, recording = record_run(solver, app, plat, 40.0, **opts)
        assert recorded.mapping == plain.mapping
        assert recorded.latency == plain.latency
        assert recorded.failure_probability == plain.failure_probability
        assert recording.solver == solver
        assert recording.solver_version == spec.version
        # the log brackets the run: a begin banner and a final result
        assert recording.events[0]["kind"] == "begin"
        assert recording.events[-1]["kind"] == "result"
        assert recording.error is None

    def test_events_carry_sequence_numbers(self, instance):
        app, plat = instance
        _, recording = record_run("local-search-min-fp", app, plat, 40.0)
        assert [e["seq"] for e in recording.events] == list(
            range(len(recording.events))
        )
        # rng draw counters are monotonically non-decreasing
        draws = [e["rng_draws"] for e in recording.events]
        assert draws == sorted(draws)
        assert draws[-1] > 0  # the solver consumed randomness

    def test_non_recordable_solver_rejected(self, instance):
        app, plat = instance
        with pytest.raises(SolverError, match="run recording"):
            record_run("alg3", app, plat, 40.0)

    def test_non_json_opts_rejected(self, instance):
        app, plat = instance
        with pytest.raises(SolverError, match="JSON-representable"):
            record_run(
                "local-search-min-fp", app, plat, 40.0, seed=0, warm=(1, 2)
            )

    def test_seed_pinned_for_seeded_solvers(self, instance):
        """An omitted seed is made explicit so the key states it."""
        app, plat = instance
        _, recording = record_run("local-search-min-fp", app, plat, 40.0)
        assert recording.opts["seed"] == 0
        _, explicit = record_run(
            "local-search-min-fp", app, plat, 40.0, seed=0
        )
        assert recording.key() == explicit.key()

    def test_infeasible_run_is_recorded_not_raised(self, instance):
        app, plat = instance
        result, recording = record_run("greedy-min-fp", app, plat, 1e-12)
        assert result is None
        assert recording.result is None
        assert "InfeasibleProblemError" in recording.error
        assert recording.events[-1]["kind"] == "result"
        assert recording.events[-1]["result"] is None

    def test_cache_events_only_when_opted_in(self, instance):
        app, plat = instance
        _, quiet = record_run("local-search-min-fp", app, plat, 40.0)
        assert not any(e["kind"] == "cache" for e in quiet.events)
        assert any(e["kind"] == "cache_stats" for e in quiet.events)
        _, chatty = record_run(
            "local-search-min-fp", app, plat, 40.0, record_cache=True
        )
        cache_events = [e for e in chatty.events if e["kind"] == "cache"]
        assert cache_events
        assert {e["hit"] for e in cache_events} == {True, False}
        assert {e["term"] for e in cache_events} <= {"lat", "rel", "in"}


class TestRecordingKey:
    def test_stable_and_well_formed(self, instance):
        app, plat = instance
        a = recording_key("greedy-min-fp", app, plat, 40.0, {"x": 1})
        b = recording_key("greedy-min-fp", app, plat, 40.0, {"x": 1})
        assert a == b
        assert len(a) == 64  # sha256 hex

    def test_disjoint_from_result_keys(self, instance):
        """Recordings and results can share one store without clashes."""
        app, plat = instance
        rec = recording_key("greedy-min-fp", app, plat, 40.0, {})
        res = instance_key("greedy-min-fp", app, plat, 40.0, {})
        assert rec != res

    def test_sensitive_to_every_component(self, instance):
        app, plat = instance
        base = recording_key("greedy-min-fp", app, plat, 40.0, {})
        assert base != recording_key("greedy-min-latency", app, plat, 40.0, {})
        assert base != recording_key("greedy-min-fp", app, plat, 41.0, {})
        assert base != recording_key(
            "greedy-min-fp", app, plat, 40.0, {"use_bulk": False}
        )
        assert base != recording_key(
            "greedy-min-fp", app, plat, 40.0, {}, solver_version=99
        )

    def test_accepts_dicts_and_objects(self, instance):
        from repro.core.serialization import (
            application_to_dict,
            platform_to_dict,
        )

        app, plat = instance
        assert recording_key(
            "greedy-min-fp", app, plat, 40.0
        ) == recording_key(
            "greedy-min-fp",
            application_to_dict(app),
            platform_to_dict(plat),
            40.0,
        )


class TestStoreRoundTrip:
    def test_byte_identical_through_json_store(self, tmp_path, instance):
        """A stored recording reloads byte-for-byte equal."""
        app, plat = instance
        path = tmp_path / "recordings.json"
        with JSONStore(path) as store:
            _, recording = record_run(
                "local-search-min-fp", app, plat, 40.0, store=store
            )
            key = recording.key()
        with JSONStore(path) as store:
            reloaded = RunRecording.from_record(store.get(key))
        assert canonical_json(reloaded.to_record()) == canonical_json(
            recording.to_record()
        )
        assert reloaded.events == recording.events
        assert reloaded.solver_result() == recording.solver_result()

    def test_instance_round_trips(self, instance):
        app, plat = instance
        _, recording = record_run("greedy-min-fp", app, plat, 40.0)
        app2, plat2 = recording.instance()
        assert app2 == app
        assert plat2 == plat

    def test_same_query_overwrites_not_duplicates(self, instance):
        app, plat = instance
        store = MemoryStore()
        record_run("greedy-min-fp", app, plat, 40.0, store=store)
        record_run("greedy-min-fp", app, plat, 40.0, store=store)
        assert len(store) == 1

    def test_from_record_rejects_foreign_records(self):
        with pytest.raises(ReproError, match="run-recording"):
            RunRecording.from_record({"kind": "solver-result"})
        with pytest.raises(ReproError, match="schema"):
            RunRecording.from_record({"kind": "run-recording", "schema": 999})
