"""Replay equivalence: record → replay → zero divergences, and the
first-divergence diagnostics when the logs genuinely disagree."""

import copy
import dataclasses

import pytest

from repro.api import diff_runs, record_run, replay_run
from repro.engine import DEFAULT_IGNORE, MemoryStore, ReplayStatus
from repro.exceptions import ReproError

from tests.helpers import make_instance

HEURISTICS = [
    "single-interval-min-fp",
    "greedy-min-fp",
    "local-search-min-fp",
    "anneal-min-fp",
]


@pytest.fixture
def instance():
    return make_instance("comm-homogeneous", 4, 3, 0)


def _record(solver, instance, *, use_bulk, threshold=40.0, **extra):
    if use_bulk:
        pytest.importorskip("numpy", exc_type=ImportError)
    app, plat = instance
    return record_run(
        solver, app, plat, threshold, use_bulk=use_bulk, **extra
    )


class TestRoundTrip:
    @pytest.mark.parametrize("use_bulk", [False, True])
    @pytest.mark.parametrize("solver", HEURISTICS)
    def test_heuristics_replay_without_divergence(
        self, solver, use_bulk, instance
    ):
        """The deterministic core: same query, same trajectory."""
        _, recording = _record(solver, instance, use_bulk=use_bulk)
        report = replay_run(recording, strict=True)
        assert report.ok
        assert report.status is ReplayStatus.MATCH
        assert report.events_compared == len(recording.events)
        assert "zero divergences" in report.summary()

    def test_replay_resolves_store_keys(self, instance):
        app, plat = instance
        store = MemoryStore()
        _, recording = record_run(
            "greedy-min-fp", app, plat, 40.0, store=store
        )
        report = replay_run(recording.key(), store)
        assert report.ok
        with pytest.raises(ReproError, match="store"):
            replay_run(recording.key())
        with pytest.raises(ReproError, match="no recording"):
            replay_run("0" * 64, store)

    def test_infeasible_recording_replays_clean(self, instance):
        app, plat = instance
        _, recording = record_run("greedy-min-fp", app, plat, 1e-12)
        assert recording.result is None
        assert replay_run(recording, strict=True).ok


class TestScalarVsBulk:
    def test_local_search_paths_agree_event_for_event(self, instance):
        """Same seed, scalar vs vectorised scoring: the trajectories
        must be bit-identical once diagnostics are filtered out."""
        _, scalar = _record(
            "local-search-min-fp", instance, use_bulk=False, seed=7
        )
        _, bulk = _record(
            "local-search-min-fp", instance, use_bulk=True, seed=7
        )
        report = diff_runs(scalar, bulk)
        assert report.ok
        assert report.events_compared > 0
        # strict comparison *should* differ: the begin banner pins
        # use_bulk, which is exactly why it sits in DEFAULT_IGNORE
        assert not diff_runs(scalar, bulk, ignore=()).ok

    @pytest.mark.parametrize("solver", HEURISTICS)
    def test_all_heuristic_paths_agree(self, solver, instance):
        opts = {"seed": 3} if solver in (
            "local-search-min-fp",
            "anneal-min-fp",
        ) else {}
        _, scalar = _record(solver, instance, use_bulk=False, **opts)
        _, bulk = _record(solver, instance, use_bulk=True, **opts)
        report = diff_runs(scalar, bulk)
        assert report.ok, report.summary()
        assert scalar.solver_result() == bulk.solver_result()

    def test_exhaustive_paths_agree_on_the_result(self):
        """The exhaustive vocabularies differ by design (incumbent vs
        block_winner), so cross-path comparison is result-only."""
        instance = make_instance("comm-homogeneous", 4, 2, 0)
        _, scalar = _record("exhaustive-min-fp", instance, use_bulk=False)
        _, bulk = _record("exhaustive-min-fp", instance, use_bulk=True)
        assert any(e["kind"] == "incumbent" for e in scalar.events)
        assert not any(e["kind"] == "incumbent" for e in bulk.events)
        assert any(e["kind"] == "block_winner" for e in bulk.events)
        # extras differ (the bulk path stamps bulk=True), the optimum
        # itself must not
        a, b = scalar.solver_result(), bulk.solver_result()
        assert (a.mapping, a.latency, a.failure_probability) == (
            b.mapping,
            b.latency,
            b.failure_probability,
        )
        # same-path replays remain strictly deterministic
        assert replay_run(scalar, strict=True).ok
        assert replay_run(bulk, strict=True).ok


class TestDivergenceDiagnostics:
    def _compared(self, recording):
        return [
            e
            for e in recording.events
            if e["kind"] not in DEFAULT_IGNORE
        ]

    def test_perturbed_event_diverges_at_exact_index(self, instance):
        _, recording = _record(
            "local-search-min-fp", instance, use_bulk=False, seed=1
        )
        events = copy.deepcopy(list(recording.events))
        compared = [
            i
            for i, e in enumerate(events)
            if e["kind"] not in DEFAULT_IGNORE
        ]
        target = compared[len(compared) // 2]
        events[target]["rng_draws"] += 999

        report = diff_runs(recording, events)
        assert report.status is ReplayStatus.DIVERGED
        divergence = report.divergence
        # index counts *compared* events, so it is the position of the
        # perturbed event within the filtered log
        assert divergence.index == compared.index(target)
        assert divergence.kind == events[target]["kind"]
        assert [d.field for d in divergence.field_diffs] == ["rng_draws"]
        assert (
            divergence.field_diffs[0].got
            == divergence.field_diffs[0].expected + 999
        )
        assert f"first divergence at event {divergence.index}" in (
            report.summary()
        )
        assert divergence.window_expected  # context travels with it
        assert events[target] in divergence.window_got

    def test_truncated_log_reports_truncation(self, instance):
        _, recording = _record("greedy-min-fp", instance, use_bulk=False)
        compared = self._compared(recording)
        report = diff_runs(recording, compared[:-1])
        assert report.status is ReplayStatus.TRUNCATED
        assert report.divergence.index == len(compared) - 1
        assert report.divergence.got is None
        assert "truncated" in report.summary()

    def test_empty_vs_empty_matches(self):
        report = diff_runs([], [])
        assert report.ok
        assert report.events_compared == 0

    def test_stale_solver_version_short_circuits(self, instance):
        _, recording = _record("greedy-min-fp", instance, use_bulk=False)
        stale = dataclasses.replace(
            recording, solver_version=recording.solver_version + 1
        )
        report = replay_run(stale)
        assert report.status is ReplayStatus.STALE
        assert not report.ok
        assert report.events_compared == 0
        assert "stale" in report.summary()
