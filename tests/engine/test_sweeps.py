"""The unified sweep engine: plans, dedup, chaining, shared caches."""

import pytest

from repro.analysis import sweep_frontier
from repro.analysis.frontier import latency_grid
from repro.api import SweepPlan, SweepSolver, run_sweep, solve, threshold_sweep
from repro.engine import MemoryStore
from repro.engine.policy import ErrorKind
from repro.engine.sweeps import SweepInstance
from repro.exceptions import (
    InfeasibleProblemError,
    ReproError,
    SolverError,
)

from tests.engine.synthetic import (
    counting_min_fp,
    invocations,
    register_synthetic,
)
from tests.helpers import make_instance


@pytest.fixture
def instance():
    return make_instance("comm-homogeneous", 4, 4, 11)


def _objectives(cell):
    return [
        (o.result.latency, o.result.failure_probability) if o.ok else None
        for o in cell.outcomes
    ]


class TestPlanModel:
    def test_rejects_empty_instances_and_solvers(self, instance):
        app, plat = instance
        with pytest.raises(ReproError, match="instance"):
            SweepPlan(instances=(), solvers=(SweepSolver("greedy-min-fp"),))
        with pytest.raises(ReproError, match="solver"):
            SweepPlan(
                instances=(SweepInstance(app, plat),), solvers=()
            )

    def test_rejects_unknown_solver_and_bad_warm_start(self, instance):
        app, plat = instance
        with pytest.raises(SolverError, match="unknown solver"):
            SweepPlan.single(app, plat, "no-such-solver", [1.0])
        with pytest.raises(ReproError, match="warm_start"):
            SweepPlan.single(app, plat, "greedy-min-fp", [1.0], warm_start="x")

    def test_rejects_thresholdless_solver(self, instance):
        app, plat = instance
        with pytest.raises(ReproError, match="takes no threshold"):
            SweepPlan.single(app, plat, "theorem1-min-fp", [1.0])

    def test_spec_round_trip_inline(self, instance):
        app, plat = instance
        plan = SweepPlan.single(
            app, plat, "greedy-min-fp", [10.0, 20.0], warm_start="chain"
        )
        plan2 = SweepPlan.from_spec(plan.to_spec())
        assert plan2.thresholds == plan.thresholds
        assert plan2.warm_start == "chain"
        inst = plan2.instances[0]
        assert inst.application.works == app.works
        assert inst.platform.speeds == plat.speeds

    def test_spec_round_trip_scenario(self):
        spec = {
            "instances": [
                {
                    "scenario": "failure-mix",
                    "seed": 5,
                    "params": {"num_processors": 4, "stages": 3},
                }
            ],
            "solvers": [{"name": "greedy-min-fp"}],
            "thresholds": [30.0],
        }
        plan = SweepPlan.from_spec(spec)
        assert plan.instances[0].tag == "failure-mix[seed=5]"
        round_tripped = SweepPlan.from_spec(plan.to_spec())
        assert (
            round_tripped.instances[0].application.works
            == plan.instances[0].application.works
        )

    def test_spec_rejects_thresholds_and_grid_together(self, instance):
        app, plat = instance
        plan = SweepPlan.single(app, plat, "greedy-min-fp", [1.0])
        spec = plan.to_spec()
        spec["grid"] = {"num_points": 5}
        with pytest.raises(ReproError, match="not both"):
            SweepPlan.from_spec(spec)

    def test_auto_grid_requires_min_fp_solver(self, instance):
        app, plat = instance
        plan = SweepPlan.single(app, plat, "greedy-min-latency", None)
        with pytest.raises(ReproError, match="explicit thresholds"):
            run_sweep(plan)

    def test_auto_grid_matches_latency_grid(self, instance):
        app, plat = instance
        plan = SweepPlan.single(app, plat, "greedy-min-fp", None, num_points=6)
        cell = run_sweep(plan).cells[0]
        assert list(cell.thresholds) == latency_grid(app, plat, num_points=6)


class TestDedup:
    def test_duplicate_thresholds_solved_once(self, instance, tmp_path):
        """Satellite bugfix: duplicate grid points dispatch one solve."""
        app, plat = instance
        counter = tmp_path / "count"
        with register_synthetic(
            "counting-sweep", counting_min_fp
        ) as name:
            outcomes = threshold_sweep(
                name,
                app,
                plat,
                [30.0, 40.0, 30.0, 40.0, 30.0],
                opts={"counter_file": str(counter)},
            )
        assert invocations(counter) == 2
        assert len(outcomes) == 5
        assert [o.index for o in outcomes] == [0, 1, 2, 3, 4]
        # duplicates share the solved result
        assert outcomes[0].result is outcomes[2].result
        assert outcomes[0].result is outcomes[4].result
        assert outcomes[1].result is outcomes[3].result

    def test_sweep_frontier_dedupes(self, instance):
        app, plat = instance
        front = sweep_frontier(
            app, plat, "greedy-min-fp", thresholds=[35.0, 35.0, 50.0]
        )
        assert front
        lats = [p.latency for p in front]
        assert lats == sorted(lats)


class TestDelegationEquivalence:
    """sweep_frontier / threshold_sweep == direct per-threshold solves."""

    @pytest.mark.parametrize("solver", ["greedy-min-fp", "anneal-min-fp"])
    def test_threshold_sweep_matches_direct_solves(self, instance, solver):
        app, plat = instance
        grid = latency_grid(app, plat, num_points=6)
        outcomes = threshold_sweep(solver, app, plat, grid, seed=3)
        for i, (t, outcome) in enumerate(zip(grid, outcomes)):
            opts = {"seed": 3 + i} if solver == "anneal-min-fp" else {}
            try:
                direct = solve(solver, app, plat, t, **opts)
            except InfeasibleProblemError:
                assert outcome.error_kind is ErrorKind.INFEASIBLE
                continue
            assert outcome.ok
            assert outcome.result.latency == direct.latency
            assert (
                outcome.result.failure_probability
                == direct.failure_probability
            )

    @pytest.mark.parametrize("kind", ["fig34", "fig5"])
    @pytest.mark.parametrize("with_store", [False, True])
    def test_sweep_frontier_reference_grids(
        self, kind, with_store, fig34, fig5
    ):
        """Acceptance: bit-identical frontiers on the paper's reference
        instances, with and without a store."""
        ref = fig34 if kind == "fig34" else fig5
        app, plat = ref.application, ref.platform
        grid = latency_grid(app, plat, num_points=8)
        expected = []
        for t in grid:
            try:
                expected.append(solve("exhaustive-min-fp", app, plat, t))
            except InfeasibleProblemError:
                continue
        from repro.core.pareto import BiCriteriaPoint, pareto_front

        expected_front = pareto_front(
            [
                BiCriteriaPoint(r.latency, r.failure_probability)
                for r in expected
            ]
        )
        store = MemoryStore() if with_store else None
        front = sweep_frontier(
            app, plat, "exhaustive-min-fp", thresholds=grid, store=store
        )
        assert [
            (p.latency, p.failure_probability) for p in front
        ] == [(p.latency, p.failure_probability) for p in expected_front]

    def test_shared_cache_is_result_invisible(self, instance):
        app, plat = instance
        grid = latency_grid(app, plat, num_points=6)
        with_cache = threshold_sweep(
            "local-search-min-fp", app, plat, grid, seed=5, shared_cache=True
        )
        without = threshold_sweep(
            "local-search-min-fp", app, plat, grid, seed=5, shared_cache=False
        )
        assert [
            (o.ok, o.result.objectives if o.ok else o.error_kind)
            for o in with_cache
        ] == [
            (o.ok, o.result.objectives if o.ok else o.error_kind)
            for o in without
        ]

    def test_shared_cache_registry_left_clean(self, instance):
        from repro.core import metrics

        app, plat = instance
        threshold_sweep(
            "greedy-min-fp", app, plat, [40.0], shared_cache=True
        )
        assert not metrics._SHARED_TERMS

    def test_crash_still_raises_from_sweep_frontier(self, instance):
        from tests.engine.synthetic import always_crash_min_fp

        app, plat = instance
        with register_synthetic("crashy-sweeps", always_crash_min_fp):
            with pytest.raises(SolverError, match="failed"):
                sweep_frontier(app, plat, "crashy-sweeps", thresholds=[40.0])


@pytest.mark.usefixtures("instance")
class TestExhaustiveOnePass:
    def test_one_pass_matches_per_point_outcomes(self, instance):
        pytest.importorskip("numpy", exc_type=ImportError)
        app, plat = instance
        grid = latency_grid(app, plat, num_points=6)
        one_pass = run_sweep(
            SweepPlan.single(
                app, plat, "exhaustive-min-fp", grid, one_pass_exhaustive=True
            )
        ).cells[0]
        per_point = run_sweep(
            SweepPlan.single(
                app, plat, "exhaustive-min-fp", grid, one_pass_exhaustive=False
            )
        ).cells[0]
        assert _objectives(one_pass) == _objectives(per_point)

    def test_one_pass_skipped_with_store(self, instance, tmp_path):
        """With a store every point must be a real task (keyed, cached)."""
        app, plat = instance
        store = MemoryStore()
        grid = latency_grid(app, plat, num_points=4)
        cell = run_sweep(
            SweepPlan.single(app, plat, "exhaustive-min-fp", grid),
            store=store,
        ).cells[0]
        assert store.stats.writes == cell.unique_thresholds


class TestWarmStartChaining:
    def test_chain_flag_requires_monotone_grid(self, instance):
        app, plat = instance
        monotone = run_sweep(
            SweepPlan.single(
                app, plat, "greedy-min-fp", [30.0, 40.0, 50.0],
                warm_start="chain",
            )
        ).cells[0]
        shuffled = run_sweep(
            SweepPlan.single(
                app, plat, "greedy-min-fp", [40.0, 30.0, 50.0],
                warm_start="chain",
            )
        ).cells[0]
        assert monotone.chained
        assert not shuffled.chained

    def test_descending_grid_also_chains(self, instance):
        app, plat = instance
        cell = run_sweep(
            SweepPlan.single(
                app, plat, "greedy-min-fp", [50.0, 40.0, 30.0],
                warm_start="chain",
            )
        ).cells[0]
        assert cell.chained

    def test_non_warm_startable_solver_never_chains(self, instance):
        app, plat = instance
        cell = run_sweep(
            SweepPlan.single(
                app,
                plat,
                "single-interval-min-fp",
                [30.0, 40.0, 50.0],
                warm_start="chain",
            )
        ).cells[0]
        assert not cell.chained

    def test_deterministic_exact_solver_chain_identical(self, instance):
        """Chaining is a no-op for non-warm-startable exact solvers: the
        frontier is identical to the cold sweep by construction."""
        app, plat = instance
        grid = latency_grid(app, plat, num_points=5)
        cold = run_sweep(
            SweepPlan.single(app, plat, "exhaustive-min-fp", grid)
        ).cells[0]
        chained = run_sweep(
            SweepPlan.single(
                app, plat, "exhaustive-min-fp", grid, warm_start="chain"
            )
        ).cells[0]
        assert not chained.chained
        assert _objectives(cold) == _objectives(chained)

    def test_deterministic_greedy_chain_identical_frontier(self, instance):
        """For the deterministic greedy heuristic the chained frontier
        must equal the cold frontier on this instance (chained per-point
        results are never worse, and the Pareto front of never-worse
        points can only match or dominate; here it matches)."""
        app, plat = instance
        grid = latency_grid(app, plat, num_points=8)
        cold = run_sweep(
            SweepPlan.single(app, plat, "greedy-min-fp", grid)
        ).cells[0]
        chained = run_sweep(
            SweepPlan.single(
                app, plat, "greedy-min-fp", grid, warm_start="chain"
            )
        ).cells[0]
        assert chained.chained
        for c, w in zip(cold.outcomes, chained.outcomes):
            if not c.ok:
                continue
            assert w.ok
            assert (
                w.result.failure_probability,
                w.result.latency,
            ) <= (c.result.failure_probability, c.result.latency)

    @pytest.mark.parametrize(
        "solver", ["local-search-min-fp", "anneal-min-fp"]
    )
    @pytest.mark.parametrize("seed", [0, 7])
    def test_seeded_heuristics_chain_never_worse(self, solver, seed):
        """Satellite: chained sweeps give never-worse objectives than
        cold sweeps for the seeded heuristics, at every threshold."""
        app, plat = make_instance("comm-homogeneous", 5, 4, 23)
        grid = latency_grid(app, plat, num_points=8)
        cold = run_sweep(
            SweepPlan.single(app, plat, solver, grid), seed=seed
        ).cells[0]
        chained = run_sweep(
            SweepPlan.single(app, plat, solver, grid, warm_start="chain"),
            seed=seed,
        ).cells[0]
        assert chained.chained
        for c, w in zip(cold.outcomes, chained.outcomes):
            if not c.ok:
                continue
            # a feasible cold point implies a feasible chained point
            # (the chain seeds with an already-feasible mapping)
            assert w.ok
            assert w.result.failure_probability <= c.result.failure_probability

    def test_chain_passes_warm_start_into_tasks(self, instance):
        app, plat = instance
        cell = run_sweep(
            SweepPlan.single(
                app, plat, "greedy-min-fp", [30.0, 45.0], warm_start="chain"
            )
        ).cells[0]
        assert "warm_starts" not in cell.outcomes[0].task.opts
        warm = cell.outcomes[1].task.opts["warm_starts"]
        assert warm[0]["kind"] == "interval-mapping"

    def test_chained_store_rerun_is_fully_warm(self, instance, tmp_path):
        """Satellite: store-warm chained sweeps re-solve nothing — the
        seed mapping is part of each task's store key."""
        app, plat = instance
        counter = tmp_path / "count"
        store = MemoryStore()
        grid = [30.0, 40.0, 55.0]
        with register_synthetic(
            "counting-chain", counting_min_fp, warm_startable=False
        ) as name:
            # warm_startable=False: the synthetic solver cannot accept
            # warm_starts opts; chain falls back to the batch path but
            # the store round-trip is what we are testing
            plan = SweepPlan.single(
                app,
                plat,
                name,
                grid,
                opts={"counter_file": str(counter)},
                warm_start="chain",
            )
            run_sweep(plan, store=store)
            before = invocations(counter)
            warm = run_sweep(plan, store=store)
            assert invocations(counter) == before
        assert all(o.cached for o in warm.cells[0].outcomes)

    def test_real_chained_store_rerun_is_fully_warm(self, instance):
        app, plat = instance
        store = MemoryStore()
        plan = SweepPlan.single(
            app,
            plat,
            "local-search-min-fp",
            [30.0, 40.0, 55.0],
            warm_start="chain",
        )
        cold = run_sweep(plan, seed=2, store=store)
        warm = run_sweep(plan, seed=2, store=store)
        assert all(o.cached for o in warm.cells[0].outcomes)
        assert _objectives(cold.cells[0]) == _objectives(warm.cells[0])

    def test_chain_opts_reduce_effort(self, instance):
        app, plat = instance
        cell = run_sweep(
            SweepPlan.single(
                app,
                plat,
                "local-search-min-fp",
                [30.0, 45.0, 60.0],
                warm_start="chain",
            ),
            seed=0,
        ).cells[0]
        # first point runs cold (default restarts), chained points carry
        # the default chain_opts reduction
        assert "restarts" not in cell.outcomes[0].task.opts
        assert cell.outcomes[1].task.opts["restarts"] == 2
        assert cell.outcomes[1].result.extras["restarts"] == 2


class TestRunSweepShape:
    def test_multi_instance_multi_solver_cells(self):
        app1, plat1 = make_instance("comm-homogeneous", 3, 3, 1)
        app2, plat2 = make_instance("comm-homogeneous", 3, 3, 2)
        plan = SweepPlan(
            instances=(
                SweepInstance(app1, plat1, tag="a"),
                SweepInstance(app2, plat2, tag="b"),
            ),
            solvers=(
                SweepSolver("greedy-min-fp"),
                SweepSolver("single-interval-min-fp"),
            ),
            thresholds=(30.0, 50.0),
        )
        result = run_sweep(plan)
        assert len(result.cells) == 4
        cell = result.cell("a", "greedy-min-fp")
        assert cell.instance_tag == "a"
        with pytest.raises(ReproError, match="2 sweep cells"):
            result.cell("a")
        with pytest.raises(ReproError, match="0 sweep cells"):
            result.cell("c", "greedy-min-fp")

    def test_workers_match_serial(self, instance):
        app, plat = instance
        grid = latency_grid(app, plat, num_points=5)
        plan = SweepPlan.single(app, plat, "local-search-min-fp", grid)
        serial = run_sweep(plan, seed=4).cells[0]
        parallel = run_sweep(plan, seed=4, workers=2).cells[0]
        assert _objectives(serial) == _objectives(parallel)

    def test_empty_grid(self, instance):
        app, plat = instance
        cell = run_sweep(
            SweepPlan.single(app, plat, "greedy-min-fp", [])
        ).cells[0]
        assert cell.outcomes == ()
        assert cell.frontier() == []
