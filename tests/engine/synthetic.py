"""Synthetic solvers for engine fault-injection tests.

Top-level functions (picklable / fork-inheritable) that wrap a real
heuristic but crash, sleep, count invocations or fail transiently on
demand.  Registered per-test through the :func:`register_synthetic`
helper, which guarantees the registry is left clean.
"""

from __future__ import annotations

import contextlib
import time
from pathlib import Path

from repro.algorithms.heuristics import greedy_minimize_fp
from repro.api import Objective, SolverSpec
from repro.engine import register, unregister


def crashy_min_fp(application, platform, threshold, *, crash=False):
    """Delegates to greedy unless ``crash=True`` (then raises TypeError)."""
    if crash:
        raise TypeError("synthetic crash (bad solver opts)")
    return greedy_minimize_fp(application, platform, threshold)


def always_crash_min_fp(application, platform, threshold):
    """Crashes unconditionally (a permanently broken solver)."""
    raise RuntimeError("synthetic permanent crash")


def crash_at_min_fp(
    application, platform, threshold, *, crash_at, warm_starts=None
):
    """Crashes at one specific threshold, else delegates to greedy.

    Accepts (and forwards) ``warm_starts`` so it can be registered
    ``warm_startable=True`` — the warm-start chain fault-tolerance
    tests inject a mid-chain crash with it.
    """
    if threshold == crash_at:
        raise RuntimeError(f"synthetic crash at threshold {crash_at}")
    return greedy_minimize_fp(
        application, platform, threshold, warm_starts=warm_starts
    )


def sleepy_min_fp(application, platform, threshold, *, sleep=0.0):
    """Sleeps ``sleep`` seconds, then delegates to greedy."""
    if sleep:
        time.sleep(sleep)
    return greedy_minimize_fp(application, platform, threshold)


def counting_min_fp(application, platform, threshold, *, counter_file):
    """Appends one byte to ``counter_file`` per invocation, then solves.

    File-based so invocations are visible across worker processes.
    """
    with open(counter_file, "ab") as fh:
        fh.write(b"x")
    return greedy_minimize_fp(application, platform, threshold)


def flaky_min_fp(application, platform, threshold, *, fail_first, scratch):
    """Fails the first ``fail_first`` invocations (tracked in ``scratch``)."""
    path = Path(scratch)
    attempts = len(path.read_bytes()) if path.exists() else 0
    with open(path, "ab") as fh:
        fh.write(b"x")
    if attempts < fail_first:
        raise RuntimeError(
            f"synthetic transient failure {attempts + 1}/{fail_first}"
        )
    return greedy_minimize_fp(application, platform, threshold)


def gated_min_fp(application, platform, threshold, *, gate, counter_file):
    """Counts its invocation, waits for ``gate`` to exist, then solves.

    The batch ``max_buffered`` test uses this to deliberately stall
    tasks: invocations are visible immediately via ``counter_file``
    while the result is withheld until the test creates the gate file.
    A 10-second timeout keeps a buggy test from deadlocking the suite.
    """
    with open(counter_file, "ab") as fh:
        fh.write(b"x")
    deadline = time.monotonic() + 10.0
    gate_path = Path(gate)
    while not gate_path.exists():
        if time.monotonic() > deadline:
            raise RuntimeError("synthetic gate never opened (test bug)")
        time.sleep(0.01)
    return greedy_minimize_fp(application, platform, threshold)


def invocations(counter_file) -> int:
    """Number of solver invocations recorded in a counter/scratch file."""
    path = Path(counter_file)
    return len(path.read_bytes()) if path.exists() else 0


@contextlib.contextmanager
def register_synthetic(name, func, **spec_kwargs):
    """Register a synthetic min-FP threshold solver for the block's scope."""
    spec_kwargs.setdefault("objective", Objective.MIN_FP)
    spec_kwargs.setdefault("exact", False)
    spec_kwargs.setdefault("needs_threshold", True)
    register(SolverSpec(name=name, func=func, **spec_kwargs))
    try:
        yield name
    finally:
        unregister(name)
