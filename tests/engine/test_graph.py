"""The dependency-aware task graph executor (``engine.batch`` graph core)."""

import multiprocessing
from dataclasses import replace

import pytest

from repro.api import BatchTask, ErrorKind, solve
from repro.engine import GraphNode, MemoryStore, iter_graph, run_graph
from repro.engine.batch import _execute
from repro.exceptions import SolverError

from tests.engine.synthetic import (
    always_crash_min_fp,
    counting_min_fp,
    invocations,
    register_synthetic,
)
from tests.helpers import make_instance


@pytest.fixture
def instance():
    return make_instance("comm-homogeneous", 4, 4, 11)


def _task(instance, threshold, solver="greedy-min-fp", **kwargs):
    app, plat = instance
    return BatchTask(solver, app, plat, threshold=threshold, **kwargs)


def _objective(outcome):
    if not outcome.ok:
        return None
    return (outcome.result.latency, outcome.result.failure_probability)


# -- top-level (picklable) runner functions -----------------------------
def grid_runner(payload):
    """One-pass style runner: answers several thresholds from one node."""
    index, task, opts, policy = payload
    outcomes = []
    for i, t in enumerate(task.opts["_grid"]):
        sub = replace(task, threshold=t, opts={}, tag=f"t={t:g}")
        outcomes.append(replace(_execute((i, sub, {}, policy)), index=i))
    return outcomes


def raising_runner(payload):
    """A buggy runner: fails outside the solver guard."""
    raise RuntimeError("synthetic runner bug")


class TestValidation:
    def test_empty_and_duplicate_names(self, instance):
        task = _task(instance, 30.0)
        with pytest.raises(SolverError, match="non-empty"):
            run_graph([GraphNode("", task)])
        with pytest.raises(SolverError, match="duplicate"):
            run_graph([GraphNode("a", task), GraphNode("a", task)])

    def test_unknown_and_self_dependencies(self, instance):
        task = _task(instance, 30.0)
        with pytest.raises(SolverError, match="unknown node"):
            run_graph([GraphNode("a", task, depends_on=("ghost",))])
        with pytest.raises(SolverError, match="depends on itself"):
            run_graph([GraphNode("a", task, depends_on=("a",))])

    def test_cycle_detected(self, instance):
        task = _task(instance, 30.0)
        nodes = [
            GraphNode("a", task, depends_on=("c",)),
            GraphNode("b", task, depends_on=("a",)),
            GraphNode("c", task, depends_on=("b",)),
        ]
        with pytest.raises(SolverError, match="cycle"):
            run_graph(nodes)

    def test_bad_on_dep_failure(self, instance):
        task = _task(instance, 30.0)
        with pytest.raises(SolverError, match="on_dep_failure"):
            run_graph([GraphNode("a", task)], on_dep_failure="abort")

    def test_threshold_shape_enforced(self, instance):
        app, plat = instance
        missing = BatchTask("greedy-min-fp", app, plat, threshold=None)
        with pytest.raises(SolverError, match="requires a threshold"):
            run_graph([GraphNode("a", missing)])
        spurious = BatchTask("theorem1-min-fp", app, plat, threshold=1.0)
        with pytest.raises(SolverError, match="not take a threshold"):
            run_graph([GraphNode("a", spurious)])
        # runner nodes own their payload: no threshold validation
        out = run_graph(
            [
                GraphNode(
                    "a",
                    replace(missing, opts={"_grid": (30.0,)}),
                    runner=grid_runner,
                )
            ]
        )
        assert out["a"][0].ok

    def test_validation_runs_before_any_solve(self, instance, tmp_path):
        counter = tmp_path / "count"
        with register_synthetic("graph-counting", counting_min_fp) as name:
            good = _task(
                instance, 30.0, solver=name,
                opts={"counter_file": str(counter)},
            )
            with pytest.raises(SolverError, match="unknown node"):
                run_graph(
                    [
                        GraphNode("a", good),
                        GraphNode("b", good, depends_on=("ghost",)),
                    ]
                )
        assert invocations(counter) == 0


class TestExecution:
    def test_independent_nodes_match_direct_solves(self, instance):
        app, plat = instance
        grid = [30.0, 40.0, 55.0]
        nodes = [
            GraphNode(f"n{i}", _task(instance, t))
            for i, t in enumerate(grid)
        ]
        streamed = list(iter_graph(nodes))
        # serial completion order == input order for independent nodes
        assert [name for name, _ in streamed] == ["n0", "n1", "n2"]
        for (_, outcome), t in zip(streamed, grid):
            direct = solve("greedy-min-fp", app, plat, t)
            assert _objective(outcome) == (
                direct.latency,
                direct.failure_probability,
            )

    def test_dependent_dispatch_order(self, instance):
        """A child never runs before its parent, wherever it is listed."""
        order = []

        def tracking(task, deps):
            order.append((task.tag, sorted(deps)))
            return task

        nodes = [
            GraphNode(
                "child",
                _task(instance, 40.0, tag="child"),
                depends_on=("parent",),
                resolve=tracking,
            ),
            GraphNode(
                "parent", _task(instance, 30.0, tag="parent"),
                resolve=tracking,
            ),
        ]
        results = run_graph(nodes)
        assert order == [("parent", []), ("child", ["parent"])]
        assert results["parent"].ok and results["child"].ok

    def test_resolver_rewrites_task_from_dependencies(self, instance):
        """The chain idiom: inject the parent's mapping as a warm start."""
        from repro.core.serialization import mapping_to_dict

        def warm_from_parent(task, deps):
            parent = deps["a"]
            assert parent.ok
            return replace(
                task,
                opts={
                    **task.opts,
                    "warm_starts": [mapping_to_dict(parent.result.mapping)],
                },
            )

        nodes = [
            GraphNode("a", _task(instance, 30.0)),
            GraphNode(
                "b",
                _task(instance, 45.0),
                depends_on=("a",),
                resolve=warm_from_parent,
            ),
        ]
        results = run_graph(nodes)
        warm = results["b"].task.opts["warm_starts"]
        assert warm[0]["kind"] == "interval-mapping"
        assert results["b"].ok

    def test_seed_index_pins_deterministic_seed(self, instance):
        """``seed_index`` reproduces ``seed + index`` exactly."""
        task = _task(instance, 40.0, solver="anneal-min-fp")
        pinned = run_graph(
            [GraphNode("a", task, seed_index=5)], seed=10
        )["a"]
        explicit = run_graph(
            [GraphNode("a", replace(task, opts={"seed": 15}))]
        )["a"]
        assert _objective(pinned) == _objective(explicit)

    def test_parallel_matches_serial(self, instance):
        from repro.core.serialization import mapping_to_dict

        def chain(task, deps):
            parent = deps["n0"]
            if not parent.ok:
                return task
            return replace(
                task,
                opts={
                    **task.opts,
                    "warm_starts": [mapping_to_dict(parent.result.mapping)],
                },
            )

        def build():
            return [
                GraphNode("n0", _task(instance, 30.0, solver="local-search-min-fp")),
                GraphNode(
                    "n1",
                    _task(instance, 45.0, solver="local-search-min-fp"),
                    depends_on=("n0",),
                    resolve=chain,
                ),
                GraphNode("n2", _task(instance, 55.0, solver="anneal-min-fp")),
            ]

        serial = run_graph(build(), seed=7)
        parallel = run_graph(build(), seed=7, workers=2)
        assert {k: _objective(v) for k, v in serial.items()} == {
            k: _objective(v) for k, v in parallel.items()
        }


class TestFaultIsolation:
    def test_crash_is_failed_outcome_not_aborted_graph(self, instance):
        with register_synthetic("graph-crash", always_crash_min_fp) as name:
            results = run_graph(
                [
                    GraphNode("bad", _task(instance, 30.0, solver=name)),
                    GraphNode("good", _task(instance, 40.0)),
                ]
            )
        assert results["bad"].error_kind is ErrorKind.CRASH
        assert results["good"].ok

    def test_skip_cancels_dependents_transitively(self, instance):
        with register_synthetic("graph-crash", always_crash_min_fp) as name:
            results = run_graph(
                [
                    GraphNode("bad", _task(instance, 30.0, solver=name)),
                    GraphNode(
                        "child", _task(instance, 40.0), depends_on=("bad",)
                    ),
                    GraphNode(
                        "grandchild",
                        _task(instance, 50.0),
                        depends_on=("child",),
                    ),
                    GraphNode("free", _task(instance, 60.0)),
                ],
                on_dep_failure="skip",
            )
        for name_ in ("child", "grandchild"):
            outcome = results[name_]
            assert outcome.error_kind is ErrorKind.CANCELLED
            assert outcome.attempts == 0
            assert "bad" in outcome.error or "child" in outcome.error
        assert results["free"].ok

    def test_run_still_runs_dependents(self, instance):
        with register_synthetic("graph-crash", always_crash_min_fp) as name:
            results = run_graph(
                [
                    GraphNode("bad", _task(instance, 30.0, solver=name)),
                    GraphNode(
                        "child", _task(instance, 40.0), depends_on=("bad",)
                    ),
                ],
                on_dep_failure="run",
            )
        assert results["child"].ok

    def test_cancelled_outcomes_never_persisted(self, instance):
        store = MemoryStore()
        with register_synthetic("graph-crash", always_crash_min_fp) as name:
            run_graph(
                [
                    GraphNode("bad", _task(instance, 30.0, solver=name)),
                    GraphNode(
                        "child", _task(instance, 40.0), depends_on=("bad",)
                    ),
                ],
                on_dep_failure="skip",
                store=store,
            )
        assert store.stats.writes == 0

    def test_runner_exception_becomes_crash_outcome(self, instance):
        """A worker-function bug is a CRASH outcome, never a lost node."""
        results = run_graph(
            [GraphNode("a", _task(instance, 30.0), runner=raising_runner)],
            workers=2,
        )
        # runner nodes always map to a list, even for the synthesized
        # crash outcome
        (outcome,) = results["a"]
        assert outcome.error_kind is ErrorKind.CRASH
        assert "runner bug" in outcome.error


class TestStoreReuse:
    def test_round_trip_and_warm_rerun(self, instance, tmp_path):
        counter = tmp_path / "count"
        store = MemoryStore()
        with register_synthetic("graph-counting", counting_min_fp) as name:
            nodes = [
                GraphNode(
                    f"n{i}",
                    _task(
                        instance, t, solver=name,
                        opts={"counter_file": str(counter)},
                    ),
                )
                for i, t in enumerate([30.0, 40.0])
            ]
            cold = run_graph(nodes, store=store)
            assert invocations(counter) == 2
            warm = run_graph(nodes, store=store)
            assert invocations(counter) == 2
        assert all(o.cached for o in warm.values())
        assert {k: _objective(v) for k, v in cold.items()} == {
            k: _objective(v) for k, v in warm.items()
        }

    def test_fully_warm_graph_never_creates_pool(
        self, instance, monkeypatch
    ):
        store = MemoryStore()
        nodes = [
            GraphNode(f"n{i}", _task(instance, t))
            for i, t in enumerate([30.0, 40.0, 55.0])
        ]
        run_graph(nodes, store=store)

        def no_pool(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("pool created for a fully warm graph")

        monkeypatch.setattr(multiprocessing, "Pool", no_pool)
        warm = run_graph(nodes, store=store, workers=4)
        assert all(o.cached for o in warm.values())

    def test_resolved_tasks_key_on_resolved_opts(self, instance):
        """Chained nodes hit the store only when the seed mapping
        matches: the resolver output is part of the key."""
        from repro.core.serialization import mapping_to_dict

        def chain(task, deps):
            parent = deps["a"]
            return replace(
                task,
                opts={
                    **task.opts,
                    "warm_starts": [mapping_to_dict(parent.result.mapping)],
                },
            )

        store = MemoryStore()
        nodes = [
            GraphNode("a", _task(instance, 30.0)),
            GraphNode(
                "b", _task(instance, 45.0), depends_on=("a",), resolve=chain
            ),
        ]
        run_graph(nodes, store=store)
        assert store.stats.writes == 2
        warm = run_graph(nodes, store=store)
        assert all(o.cached for o in warm.values())
        # the same task *without* the chain seed is a different key
        cold = run_graph(
            [GraphNode("b", _task(instance, 45.0))], store=store
        )
        assert not cold["b"].cached

    def test_runner_nodes_bypass_store(self, instance):
        store = MemoryStore()
        task = BatchTask(
            "greedy-min-fp",
            instance[0],
            instance[1],
            threshold=None,
            opts={"_grid": (30.0, 40.0)},
        )
        out = run_graph(
            [GraphNode("a", task, runner=grid_runner)], store=store
        )
        assert [o.ok for o in out["a"]] == [True, True]
        assert store.stats.writes == 0
        assert store.stats.misses == 0


class TestRunnerNodes:
    def test_multi_outcome_runner_yields_each(self, instance):
        app, plat = instance
        grid = (30.0, 40.0, 55.0)
        task = BatchTask(
            "greedy-min-fp", app, plat, threshold=None,
            opts={"_grid": grid},
        )
        streamed = list(
            iter_graph([GraphNode("a", task, runner=grid_runner)])
        )
        assert [name for name, _ in streamed] == ["a", "a", "a"]
        for (_, outcome), t in zip(streamed, grid):
            direct = solve("greedy-min-fp", app, plat, t)
            assert _objective(outcome) == (
                direct.latency,
                direct.failure_probability,
            )
        # run_graph shape: runner nodes map to the list of outcomes
        collected = run_graph([GraphNode("a", task, runner=grid_runner)])
        assert [o.index for o in collected["a"]] == [0, 1, 2]
