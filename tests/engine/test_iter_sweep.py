"""Streaming sweep execution: ``iter_sweep`` over the plan task graph."""

import pytest

from repro.api import (
    SweepInstance,
    SweepPlan,
    SweepPoint,
    SweepSolver,
    iter_sweep,
    run_sweep,
)
from repro.engine import MemoryStore
from repro.engine.policy import ErrorKind
from repro.exceptions import ReproError

from tests.engine.synthetic import (
    crash_at_min_fp,
    register_synthetic,
    sleepy_min_fp,
)
from tests.helpers import make_instance


@pytest.fixture
def instance():
    return make_instance("comm-homogeneous", 4, 4, 11)


def _objectives(cell):
    return [
        (o.result.latency, o.result.failure_probability) if o.ok else None
        for o in cell.outcomes
    ]


def _two_by_two_plan():
    app1, plat1 = make_instance("comm-homogeneous", 3, 3, 1)
    app2, plat2 = make_instance("comm-homogeneous", 3, 3, 2)
    return SweepPlan(
        instances=(
            SweepInstance(app1, plat1, tag="a"),
            SweepInstance(app2, plat2, tag="b"),
        ),
        solvers=(
            SweepSolver("greedy-min-fp"),
            SweepSolver("local-search-min-fp"),
        ),
        thresholds=(30.0, 50.0),
    )


class TestStreamCells:
    def test_in_order_matches_run_sweep(self):
        plan = _two_by_two_plan()
        drained = run_sweep(plan, seed=3)
        streamed = list(iter_sweep(plan, seed=3, in_order=True))
        assert [
            (c.instance_tag, c.solver) for c in streamed
        ] == [(c.instance_tag, c.solver) for c in drained.cells]
        for got, want in zip(streamed, drained.cells):
            assert _objectives(got) == _objectives(want)
            assert got.thresholds == want.thresholds
            assert got.chained == want.chained

    def test_completion_order_same_cells(self):
        """``in_order=False`` reorders delivery, never content."""
        plan = _two_by_two_plan()
        drained = {
            (c.instance_tag, c.solver): _objectives(c)
            for c in run_sweep(plan, seed=3).cells
        }
        streamed = {
            (c.instance_tag, c.solver): _objectives(c)
            for c in iter_sweep(plan, seed=3, in_order=False)
        }
        assert streamed == drained

    def test_completion_order_beats_plan_order(self, instance):
        """A fast cell lands before a slow one dispatched earlier."""
        app, plat = instance
        with register_synthetic("sleepy-stream", sleepy_min_fp) as name:
            plan = SweepPlan(
                instances=(SweepInstance(app, plat, tag="i"),),
                solvers=(
                    SweepSolver(name, opts={"sleep": 1.5}),
                    SweepSolver("greedy-min-fp"),
                ),
                thresholds=(40.0,),
            )
            unordered = list(
                iter_sweep(plan, workers=2, in_order=False)
            )
            ordered = list(iter_sweep(plan, workers=2, in_order=True))
        assert unordered[0].solver == "greedy-min-fp"
        assert ordered[0].solver == name

    def test_empty_grid_cells_stream_first(self, instance):
        app, plat = instance
        plan = SweepPlan.single(app, plat, "greedy-min-fp", [])
        cells = list(iter_sweep(plan))
        assert len(cells) == 1
        assert cells[0].outcomes == ()

    def test_bad_stream_mode_rejected(self, instance):
        app, plat = instance
        plan = SweepPlan.single(app, plat, "greedy-min-fp", [30.0])
        with pytest.raises(ReproError, match="stream"):
            next(iter(iter_sweep(plan, stream="everything")))


class TestStreamPoints:
    def test_points_match_cell_outcomes(self, instance):
        app, plat = instance
        grid = [30.0, 45.0, 30.0, 60.0]  # duplicate fans out
        plan = SweepPlan.single(app, plat, "greedy-min-fp", grid)
        cell = run_sweep(plan, seed=1).cells[0]
        points = list(iter_sweep(plan, seed=1, stream="points"))
        assert all(isinstance(p, SweepPoint) for p in points)
        assert [p.index for p in points] == [0, 1, 2, 3]
        assert [p.threshold for p in points] == grid
        for point, outcome in zip(points, cell.outcomes):
            assert point.instance_tag == cell.instance_tag
            assert point.solver == "greedy-min-fp"
            assert point.outcome.index == outcome.index
            assert (
                point.outcome.result.latency == outcome.result.latency
            )

    def test_point_ids_span_cells(self):
        plan = _two_by_two_plan()
        points = list(iter_sweep(plan, seed=3, stream="points"))
        # 4 cells x 2 grid points, plan order under in_order=True
        assert [
            (p.instance_tag, p.solver, p.index) for p in points
        ] == [
            (tag, solver, i)
            for tag in ("a", "b")
            for solver in ("greedy-min-fp", "local-search-min-fp")
            for i in (0, 1)
        ]


class TestReferenceGridEquality:
    @pytest.mark.parametrize("kind", ["fig34", "fig5"])
    @pytest.mark.parametrize("with_store", [False, True])
    def test_iter_sweep_matches_run_sweep(
        self, kind, with_store, fig34, fig5
    ):
        """Acceptance: streaming the paper's reference grids gives
        outcomes identical to the drained sweep, with and without a
        result store."""
        from repro.analysis.frontier import latency_grid

        ref = fig34 if kind == "fig34" else fig5
        app, plat = ref.application, ref.platform
        grid = latency_grid(app, plat, num_points=6)
        plan = SweepPlan(
            instances=(SweepInstance(app, plat, tag=kind),),
            solvers=(
                SweepSolver("greedy-min-fp"),
                SweepSolver("single-interval-min-fp"),
            ),
            thresholds=tuple(grid),
        )
        drained = run_sweep(plan, seed=0).cells
        store = MemoryStore() if with_store else None
        streamed = list(iter_sweep(plan, seed=0, store=store))
        assert [_objectives(c) for c in streamed] == [
            _objectives(c) for c in drained
        ]
        if store is not None:
            # and a second streaming pass is fully store-warm
            warm = list(iter_sweep(plan, seed=0, store=store))
            assert all(
                o.cached for c in warm for o in c.outcomes if o.ok
            )
            assert [_objectives(c) for c in warm] == [
                _objectives(c) for c in drained
            ]


class TestChainCrashFallback:
    def test_mid_chain_crash_falls_back_to_last_good(self, instance):
        """Satellite: a crashed chain point breaks the chain gracefully
        — the next point re-seeds from the last good mapping."""
        from repro.core.serialization import mapping_to_dict

        app, plat = instance
        with register_synthetic(
            "crash-at-stream", crash_at_min_fp, warm_startable=True
        ) as name:
            plan = SweepPlan(
                instances=(SweepInstance(app, plat, tag="i"),),
                solvers=(
                    SweepSolver(name, opts={"crash_at": 40.0}),
                ),
                thresholds=(30.0, 40.0, 50.0, 60.0),
                warm_start="chain",
            )
            cell = run_sweep(plan).cells[0]
        assert cell.chained
        first, crashed, third, fourth = cell.outcomes
        assert first.ok
        assert "warm_starts" not in first.task.opts
        assert crashed.error_kind is ErrorKind.CRASH
        # the crashed point's own seed came from the first point
        assert crashed.task.opts["warm_starts"] == [
            mapping_to_dict(first.result.mapping)
        ]
        # the chain survives: point 3 falls back to the last good seed
        assert third.ok
        assert third.task.opts["warm_starts"] == [
            mapping_to_dict(first.result.mapping)
        ]
        # and then re-chains from point 3 onwards
        assert fourth.ok
        assert fourth.task.opts["warm_starts"] == [
            mapping_to_dict(third.result.mapping)
        ]

    def test_leading_crash_leaves_next_point_unseeded(self, instance):
        """No good point yet: the next chain point runs cold (full
        effort, no warm start) instead of being cancelled."""
        app, plat = instance
        with register_synthetic(
            "crash-at-stream", crash_at_min_fp, warm_startable=True
        ) as name:
            plan = SweepPlan(
                instances=(SweepInstance(app, plat, tag="i"),),
                solvers=(SweepSolver(name, opts={"crash_at": 30.0}),),
                thresholds=(30.0, 45.0, 60.0),
                warm_start="chain",
            )
            cell = run_sweep(plan).cells[0]
        assert cell.chained
        crashed, second, third = cell.outcomes
        assert crashed.error_kind is ErrorKind.CRASH
        assert second.ok
        assert "warm_starts" not in second.task.opts
        assert third.ok
        assert "warm_starts" in third.task.opts

    def test_crashy_chain_matches_in_parallel(self, instance):
        app, plat = instance
        with register_synthetic(
            "crash-at-stream", crash_at_min_fp, warm_startable=True
        ) as name:
            plan = SweepPlan(
                instances=(SweepInstance(app, plat, tag="i"),),
                solvers=(SweepSolver(name, opts={"crash_at": 40.0}),),
                thresholds=(30.0, 40.0, 50.0, 60.0),
                warm_start="chain",
            )
            serial = run_sweep(plan).cells[0]
            parallel = run_sweep(plan, workers=2).cells[0]
        assert _objectives(serial) == _objectives(parallel)


class TestWarmupSkips:
    def test_store_warm_plan_skips_term_warmup(self, instance, monkeypatch):
        """Satellite: a fully store-warm plan never warms the shared
        evaluation terms (the store is probed first)."""
        from repro.engine import sweeps as sweeps_mod

        app, plat = instance
        plan = SweepPlan.single(
            app, plat, "greedy-min-fp", [30.0, 45.0, 60.0]
        )
        store = MemoryStore()
        run_sweep(plan, store=store)

        calls = []
        real = sweeps_mod.shared_cache_terms

        def counting(*args, **kwargs):
            calls.append(args)
            return real(*args, **kwargs)

        monkeypatch.setattr(sweeps_mod, "shared_cache_terms", counting)
        warm = run_sweep(plan, store=store)
        assert all(o.cached for o in warm.cells[0].outcomes)
        assert calls == []
        # a plan with any cold point still warms up
        cold_plan = SweepPlan.single(app, plat, "greedy-min-fp", [75.0])
        run_sweep(cold_plan, store=store)
        assert len(calls) == 1

    def test_warm_probe_is_stats_neutral(self, instance):
        """The warm-skip prediction peeks: store stats count exactly
        one real lookup per unique task, before and after."""
        app, plat = instance
        plan = SweepPlan.single(
            app, plat, "greedy-min-fp", [30.0, 45.0, 30.0]
        )
        store = MemoryStore()
        run_sweep(plan, store=store)
        assert store.stats.misses == 2
        assert store.stats.writes == 2
        run_sweep(plan, store=store)
        assert store.stats.hits == 2
        assert store.stats.misses == 2

    def test_chained_store_warm_plan_skips_warmup(self, instance, monkeypatch):
        """The warm probe walks chains (seed mappings are part of each
        key) and still predicts full warmth."""
        from repro.engine import sweeps as sweeps_mod

        app, plat = instance
        plan = SweepPlan.single(
            app,
            plat,
            "local-search-min-fp",
            [30.0, 45.0, 60.0],
            warm_start="chain",
        )
        store = MemoryStore()
        cold = run_sweep(plan, seed=2, store=store)
        assert cold.cells[0].chained

        calls = []
        real = sweeps_mod.shared_cache_terms

        def counting(*args, **kwargs):
            calls.append(args)
            return real(*args, **kwargs)

        monkeypatch.setattr(sweeps_mod, "shared_cache_terms", counting)
        warm = run_sweep(plan, seed=2, store=store)
        assert all(o.cached for o in warm.cells[0].outcomes)
        assert calls == []


class TestWorkersParity:
    def test_multi_cell_parallel_matches_serial(self):
        plan = _two_by_two_plan()
        serial = run_sweep(plan, seed=4)
        parallel = run_sweep(plan, seed=4, workers=2)
        assert [_objectives(c) for c in serial.cells] == [
            _objectives(c) for c in parallel.cells
        ]

    def test_streaming_points_parallel_matches_serial(self, instance):
        app, plat = instance
        plan = SweepPlan.single(
            app, plat, "local-search-min-fp", [30.0, 45.0, 60.0]
        )
        serial = [
            (p.index, p.outcome.result.latency if p.outcome.ok else None)
            for p in iter_sweep(plan, seed=6, stream="points")
        ]
        parallel = [
            (p.index, p.outcome.result.latency if p.outcome.ok else None)
            for p in iter_sweep(
                plan, seed=6, workers=2, stream="points"
            )
        ]
        assert serial == parallel
