"""Persistent result store: keys, backends, stats, dedup reuse."""

import json

import pytest

from repro import api
from repro.engine.store import (
    JSONStore,
    MemoryStore,
    SQLiteStore,
    instance_key,
    open_store,
)
from repro.exceptions import ReproError

from tests.engine.synthetic import (
    always_crash_min_fp,
    counting_min_fp,
    invocations,
    register_synthetic,
)
from tests.helpers import make_instance


@pytest.fixture
def instance():
    return make_instance("comm-homogeneous", 3, 4, 7)


class TestInstanceKey:
    def test_stable_across_calls(self, instance):
        app, plat = instance
        a = instance_key("greedy-min-fp", app, plat, 50.0, {"x": 1})
        b = instance_key("greedy-min-fp", app, plat, 50.0, {"x": 1})
        assert a == b
        assert len(a) == 64  # sha256 hex

    def test_sensitive_to_every_component(self, instance):
        app, plat = instance
        app2, plat2 = make_instance("comm-homogeneous", 3, 4, 8)
        base = instance_key("greedy-min-fp", app, plat, 50.0, {})
        assert instance_key("anneal-min-fp", app, plat, 50.0, {}) != base
        assert instance_key("greedy-min-fp", app2, plat, 50.0, {}) != base
        assert instance_key("greedy-min-fp", app, plat2, 50.0, {}) != base
        assert instance_key("greedy-min-fp", app, plat, 51.0, {}) != base
        assert (
            instance_key("greedy-min-fp", app, plat, 50.0, {"seed": 1})
            != base
        )
        assert (
            instance_key("greedy-min-fp", app, plat, 50.0, {}, solver_version=2)
            != base
        )

    def test_opts_order_irrelevant(self, instance):
        app, plat = instance
        a = instance_key("g", app, plat, 1.0, {"a": 1, "b": 2})
        b = instance_key("g", app, plat, 1.0, {"b": 2, "a": 1})
        assert a == b


class TestBackends:
    RECORD = {"solver": "x", "result": None, "error": "E: boom",
              "error_kind": "crash", "elapsed": 0.1, "attempts": 2}

    @pytest.fixture(params=["memory", "json", "sqlite"])
    def store(self, request, tmp_path):
        if request.param == "memory":
            yield MemoryStore()
        elif request.param == "json":
            with JSONStore(tmp_path / "s.json") as s:
                yield s
        else:
            with SQLiteStore(tmp_path / "s.sqlite") as s:
                yield s

    def test_round_trip(self, store):
        assert store.get("k") is None
        store.put("k", self.RECORD)
        assert store.get("k") == self.RECORD
        assert "k" in store
        assert "other" not in store
        assert len(store) == 1
        assert list(store.keys()) == ["k"]

    def test_overwrite(self, store):
        store.put("k", self.RECORD)
        store.put("k", {**self.RECORD, "attempts": 5})
        assert store.get("k")["attempts"] == 5
        assert len(store) == 1

    def test_stats(self, store):
        store.get("missing")
        store.put("k", self.RECORD)
        store.get("k")
        store.get("k")
        assert store.stats.hits == 2
        assert store.stats.misses == 1
        assert store.stats.writes == 1
        assert store.stats.hit_rate == pytest.approx(2 / 3)
        assert store.stats.as_dict()["hit_rate"] == pytest.approx(2 / 3)

    def test_empty_stats(self):
        assert MemoryStore().stats.hit_rate == 0.0


class TestPersistence:
    def test_json_survives_reopen(self, tmp_path):
        path = tmp_path / "s.json"
        with JSONStore(path) as store:
            store.put("k", {"v": 1})
        with JSONStore(path) as store:
            assert store.get("k") == {"v": 1}

    def test_json_file_is_plain_json(self, tmp_path):
        path = tmp_path / "s.json"
        with JSONStore(path) as store:
            store.put("k", {"v": 1})
        payload = json.loads(path.read_text())
        assert payload["records"]["k"] == {"v": 1}

    def test_json_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text('{"schema": 999, "records": {}}')
        with pytest.raises(ReproError, match="schema"):
            JSONStore(path)

    def test_json_recovers_from_truncated_file(self, tmp_path):
        path = tmp_path / "s.json"
        with JSONStore(path) as store:
            store.put("k", {"v": 1})
        # simulate a partial copy / disk fault: cut the file mid-payload
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.warns(UserWarning, match="not valid JSON"):
            store = JSONStore(path)
        with store:
            # fresh store: old data gone, but usable again
            assert store.get("k") is None
            store.put("k2", {"v": 2})
        # the corrupt original is quarantined, not destroyed
        quarantine = tmp_path / "s.json.corrupt"
        assert quarantine.exists()
        assert quarantine.read_text() == text[: len(text) // 2]
        # and the recovered store persists normally
        with JSONStore(path) as store:
            assert store.get("k2") == {"v": 2}

    def test_json_recovers_from_garbage_bytes(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text("{not json at all")
        with pytest.warns(UserWarning, match="not valid JSON"):
            with JSONStore(path) as store:
                assert len(store) == 0

    def test_sqlite_survives_reopen(self, tmp_path):
        path = tmp_path / "s.sqlite"
        with SQLiteStore(path) as store:
            store.put("k", {"v": 1})
        with SQLiteStore(path) as store:
            assert store.get("k") == {"v": 1}


class TestOpenStore:
    def test_dispatch(self, tmp_path):
        assert isinstance(open_store(":memory:"), MemoryStore)
        json_store = open_store(tmp_path / "a.json")
        assert isinstance(json_store, JSONStore)
        sqlite_store = open_store(tmp_path / "a.db")
        assert isinstance(sqlite_store, SQLiteStore)
        sqlite_store.close()


class TestDedupReuse:
    """The acceptance criterion: warm grids never re-invoke solvers."""

    def test_warm_threshold_sweep_zero_invocations(self, tmp_path, instance):
        app, plat = instance
        counter = tmp_path / "count"
        thresholds = [30.0, 50.0, 80.0, 120.0]
        with register_synthetic("counting-min-fp", counting_min_fp):
            with api.open_store(tmp_path / "store.json") as store:
                cold = api.threshold_sweep(
                    "counting-min-fp", app, plat, thresholds,
                    store=store, opts={"counter_file": str(counter)},
                )
            assert invocations(counter) == len(thresholds)
            with api.open_store(tmp_path / "store.json") as store:
                warm = api.threshold_sweep(
                    "counting-min-fp", app, plat, thresholds,
                    store=store, opts={"counter_file": str(counter)},
                )
                assert store.stats.hits == len(thresholds)
                assert store.stats.misses == 0
                assert store.stats.hit_rate == 1.0
        # zero new solver invocations on the warm run
        assert invocations(counter) == len(thresholds)
        # and bit-identical results
        assert [
            (o.result.latency, o.result.failure_probability, o.result.mapping)
            for o in cold
        ] == [
            (o.result.latency, o.result.failure_probability, o.result.mapping)
            for o in warm
        ]
        assert all(o.cached for o in warm)
        assert not any(o.cached for o in cold)

    def test_infeasible_outcomes_are_cached_too(self, instance):
        app, plat = instance
        store = MemoryStore()
        cold = api.threshold_sweep(
            "greedy-min-fp", app, plat, [1e-9], store=store
        )
        warm = api.threshold_sweep(
            "greedy-min-fp", app, plat, [1e-9], store=store
        )
        assert cold[0].error_kind is api.ErrorKind.INFEASIBLE
        assert warm[0].error_kind is api.ErrorKind.INFEASIBLE
        assert warm[0].cached
        assert warm[0].error == cold[0].error

    def test_crash_outcomes_are_not_cached(self, instance):
        app, plat = instance
        store = MemoryStore()
        with register_synthetic("crashy-store", always_crash_min_fp):
            api.run_batch(
                [api.BatchTask("crashy-store", app, plat, threshold=1.0)],
                store=store,
            )
            again = api.run_batch(
                [api.BatchTask("crashy-store", app, plat, threshold=1.0)],
                store=store,
            )
        assert store.stats.writes == 0
        assert not again[0].cached

    def test_unseeded_random_solver_bypasses_store(self, instance):
        app, plat = instance
        store = MemoryStore()
        task = api.BatchTask(
            "local-search-min-fp", app, plat, threshold=80.0
        )
        api.run_batch([task], store=store)  # no base seed -> no key
        assert store.stats.lookups == 0
        assert store.stats.writes == 0
        # with a base seed the task is deterministic and cacheable
        api.run_batch([task], seed=0, store=store)
        assert store.stats.writes == 1
        warm = api.run_batch([task], seed=0, store=store)
        assert warm[0].cached


class TestJSONStoreFlushing:
    def test_batched_flush_persists_on_close(self, tmp_path):
        path = tmp_path / "s.json"
        store = JSONStore(path, flush_every=100)
        store.put("a", {"v": 1})
        store.put("b", {"v": 2})
        # below the flush threshold: nothing on disk yet
        assert not path.exists()
        store.close()
        with JSONStore(path) as reopened:
            assert reopened.get("a") == {"v": 1}
            assert reopened.get("b") == {"v": 2}

    def test_flush_threshold_triggers_write(self, tmp_path):
        path = tmp_path / "s.json"
        store = JSONStore(path, flush_every=2)
        store.put("a", {"v": 1})
        assert not path.exists()
        store.put("b", {"v": 2})
        assert path.exists()  # threshold reached
        store.close()


class TestSolverVersionGuard:
    """A stale record (manual edit / migrated store) must never replay."""

    def _cold_run(self, instance):
        app, plat = instance
        store = MemoryStore()
        task = api.BatchTask("greedy-min-fp", app, plat, threshold=200.0)
        (outcome,) = api.run_batch([task], store=store)
        assert outcome.ok and not outcome.cached
        (key,) = store.keys()
        return store, task, key, outcome

    def test_record_carries_registered_version(self, instance):
        from repro.engine.registry import get_solver

        store, _, key, _ = self._cold_run(instance)
        record = store.get(key)
        assert record["solver_version"] == get_solver("greedy-min-fp").version

    def test_version_mismatch_warns_and_resolves(self, instance):
        store, task, key, cold = self._cold_run(instance)
        record = dict(store.get(key))
        record["solver_version"] = 1  # simulate a stale entry
        store.put(key, record)
        with pytest.warns(UserWarning, match="version 1 but the registered"):
            (again,) = api.run_batch([task], store=store)
        # the stale entry was ignored: re-solved, not served from cache
        assert again.ok and not again.cached
        assert again.result.mapping == cold.result.mapping
        # and the store now holds the refreshed record
        from repro.engine.registry import get_solver

        assert store.get(key)["solver_version"] == get_solver(
            "greedy-min-fp"
        ).version

    def test_legacy_record_without_version_still_served(self, instance):
        store, task, key, _ = self._cold_run(instance)
        record = dict(store.get(key))
        del record["solver_version"]  # PR 2/3 stores predate the field
        store.put(key, record)
        (again,) = api.run_batch([task], store=store)
        assert again.ok and again.cached


class TestEvictionAndPrune:
    """LRU record caps and the explicit prune() API (all backends)."""

    def _stores(self, tmp_path, max_records):
        return [
            MemoryStore(max_records=max_records),
            JSONStore(
                tmp_path / "cap.json", max_records=max_records, flush_every=2
            ),
            SQLiteStore(tmp_path / "cap.sqlite", max_records=max_records),
        ]

    def test_cap_evicts_least_recently_used(self, tmp_path):
        for store in self._stores(tmp_path, max_records=3):
            for i in range(5):
                store.put(f"k{i}", {"v": i})
            assert len(store) == 3
            assert "k0" not in store and "k1" not in store
            assert store.stats.evictions == 2
            # a hit refreshes recency: k2 survives the next eviction
            assert store.get("k2") == {"v": 2}
            store.put("k5", {"v": 5})
            assert "k2" in store and "k3" not in store
            store.close()

    def test_overwrite_refreshes_recency(self, tmp_path):
        for store in self._stores(tmp_path, max_records=2):
            store.put("a", {"v": 0})
            store.put("b", {"v": 1})
            store.put("a", {"v": 2})  # refresh: b is now the LRU entry
            store.put("c", {"v": 3})
            assert "a" in store and "b" not in store
            store.close()

    def test_prune_api_on_uncapped_store(self, tmp_path):
        for store in self._stores(tmp_path, max_records=None):
            for i in range(6):
                store.put(f"k{i}", {"v": i})
            assert store.prune() == 0  # no cap, explicit limit required
            evicted = store.prune(2)
            assert evicted == 4
            assert len(store) == 2
            assert set(store.keys()) == {"k4", "k5"}
            assert store.stats.evictions == 4
            store.close()

    def test_lru_order_survives_reopen_json(self, tmp_path):
        path = tmp_path / "order.json"
        store = JSONStore(path, max_records=10)
        for i in range(4):
            store.put(f"k{i}", {"v": i})
        store.get("k0")  # k0 becomes most recent (capped: hits touch)
        store.close()
        reopened = JSONStore(path)
        assert reopened.prune(1) == 3
        assert set(reopened.keys()) == {"k0"}
        reopened.close()

    def test_lru_order_survives_reopen_sqlite(self, tmp_path):
        path = tmp_path / "order.sqlite"
        store = SQLiteStore(path, max_records=10)
        for i in range(4):
            store.put(f"k{i}", {"v": i})
        store.get("k0")
        store.close()
        reopened = SQLiteStore(path)
        assert reopened.prune(1) == 3
        assert set(reopened.keys()) == {"k0"}
        reopened.close()

    def test_uncapped_lookups_do_not_track_recency(self, tmp_path):
        """Uncapped stores keep lookups read-only: prune() then evicts
        by write order, not use order."""
        store = SQLiteStore(tmp_path / "ro.sqlite")
        for i in range(4):
            store.put(f"k{i}", {"v": i})
        store.get("k0")  # no touch: k0 stays oldest-written
        assert store.prune(2) == 2
        assert set(store.keys()) == {"k2", "k3"}
        store.close()

    def test_reopen_with_tighter_cap_prunes_immediately(self, tmp_path):
        for path, cls in (
            (tmp_path / "tight.json", JSONStore),
            (tmp_path / "tight.sqlite", SQLiteStore),
        ):
            store = cls(path)
            for i in range(5):
                store.put(f"k{i}", {"v": i})
            store.close()
            capped = cls(path, max_records=2)
            assert len(capped) == 2
            assert set(capped.keys()) == {"k3", "k4"}
            capped.close()

    def test_pre_eviction_sqlite_store_is_migrated(self, tmp_path):
        import sqlite3

        path = tmp_path / "legacy.sqlite"
        conn = sqlite3.connect(path)
        conn.execute(
            "CREATE TABLE results ("
            " key TEXT PRIMARY KEY,"
            " schema INTEGER NOT NULL,"
            " record TEXT NOT NULL)"
        )
        conn.execute(
            "INSERT INTO results VALUES ('old', 1, '{\"v\": 1}')"
        )
        conn.commit()
        conn.close()
        store = SQLiteStore(path, max_records=5)
        assert store.get("old") == {"v": 1}
        store.put("new", {"v": 2})
        assert len(store) == 2
        store.close()

    def test_bad_max_records_rejected(self):
        with pytest.raises(ReproError, match="max_records"):
            MemoryStore(max_records=0)

    def test_open_store_passes_cap_through(self, tmp_path):
        for path in (":memory:", tmp_path / "c.json", tmp_path / "c.sqlite"):
            store = open_store(path, max_records=2)
            for i in range(4):
                store.put(f"k{i}", {"v": i})
            assert len(store) == 2
            store.close()

    def test_capped_store_through_batch_engine(self, instance):
        """A capped store still serves the engine: recent grid points
        hit, evicted ones transparently re-solve."""
        app, plat = instance
        store = MemoryStore(max_records=2)
        thresholds = [30.0, 45.0, 60.0]
        api.threshold_sweep(
            "greedy-min-fp", app, plat, thresholds, store=store
        )
        assert len(store) == 2  # the oldest grid point was evicted
        again = api.threshold_sweep(
            "greedy-min-fp", app, plat, thresholds, store=store
        )
        cached = [o.cached for o in again]
        assert cached.count(True) >= 1  # warm tail
        assert cached.count(False) >= 1  # evicted head re-solved
