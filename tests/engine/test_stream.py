"""Streaming execution: iter_batch, fault isolation, retries, timeouts."""

import pytest

from repro import api, engine
from repro.api import BatchPolicy, BatchTask, ErrorKind, iter_batch

from tests.engine.synthetic import (
    counting_min_fp,
    crashy_min_fp,
    flaky_min_fp,
    invocations,
    register_synthetic,
    sleepy_min_fp,
)
from tests.helpers import make_instance


@pytest.fixture
def instance():
    return make_instance("comm-homogeneous", 3, 4, 11)


def _outcome_key(outcome):
    if outcome.result is None:
        return (outcome.index, outcome.tag, outcome.error, outcome.error_kind)
    return (
        outcome.index,
        outcome.tag,
        outcome.result.latency,
        outcome.result.failure_probability,
        outcome.result.mapping,
    )


class TestStreaming:
    def test_first_outcome_before_batch_completes(self, tmp_path, instance):
        """The defining property: results stream, they don't batch."""
        app, plat = instance
        counter = tmp_path / "count"
        tasks = [
            BatchTask(
                "counting-stream",
                app,
                plat,
                threshold=t,
                opts={"counter_file": str(counter)},
            )
            for t in (30.0, 50.0, 80.0, 120.0)
        ]
        with register_synthetic("counting-stream", counting_min_fp):
            stream = iter_batch(tasks)
            first = next(stream)
            # only the first task has run when the first outcome arrives
            assert invocations(counter) == 1
            remaining = list(stream)
        assert first.index == 0 and first.ok
        assert [o.index for o in remaining] == [1, 2, 3]
        assert invocations(counter) == len(tasks)

    def test_stream_identical_to_run_batch(self, instance):
        app, plat = instance
        tasks = [
            BatchTask("greedy-min-fp", app, plat, threshold=t, tag=f"t={t:g}")
            for t in (20.0, 1e-9, 60.0, 90.0)
        ] + [
            BatchTask(
                "local-search-min-fp",
                app,
                plat,
                threshold=80.0,
                tag="seeded",
            )
        ]
        batched = api.run_batch(tasks, seed=5)
        streamed = list(iter_batch(tasks, seed=5))
        streamed_parallel = list(iter_batch(tasks, workers=3, seed=5))
        assert [_outcome_key(o) for o in batched] == [
            _outcome_key(o) for o in streamed
        ]
        assert [_outcome_key(o) for o in batched] == [
            _outcome_key(o) for o in streamed_parallel
        ]

    def test_unordered_mode_yields_every_index_once(self, instance):
        app, plat = instance
        tasks = [
            BatchTask("greedy-min-fp", app, plat, threshold=t)
            for t in (20.0, 40.0, 60.0, 80.0, 100.0, 120.0)
        ]
        unordered = list(iter_batch(tasks, workers=3, in_order=False))
        assert sorted(o.index for o in unordered) == list(range(len(tasks)))
        in_order = list(iter_batch(tasks, workers=3))
        assert sorted(_outcome_key(o) for o in unordered) == sorted(
            _outcome_key(o) for o in in_order
        )

    def test_empty_batch_streams_nothing(self):
        assert list(iter_batch([])) == []

    def test_stream_with_warm_store_mixed_hits(self, instance):
        app, plat = instance
        store = engine.MemoryStore()
        warm_tasks = [
            BatchTask("greedy-min-fp", app, plat, threshold=t)
            for t in (20.0, 60.0)
        ]
        api.run_batch(warm_tasks, store=store)
        mixed = [
            BatchTask("greedy-min-fp", app, plat, threshold=t)
            for t in (20.0, 40.0, 60.0, 80.0)
        ]
        outcomes = list(iter_batch(mixed, workers=2, store=store))
        assert [o.index for o in outcomes] == [0, 1, 2, 3]
        assert [o.cached for o in outcomes] == [True, False, True, False]


class TestFaultIsolation:
    """Satellite regression: a crashing task never aborts a mixed batch."""

    @pytest.mark.parametrize("workers", [None, 2])
    def test_crash_is_isolated(self, workers, instance):
        app, plat = instance
        with register_synthetic("crashy-iso", crashy_min_fp):
            tasks = [
                BatchTask("crashy-iso", app, plat, threshold=50.0),
                BatchTask(
                    "crashy-iso",
                    app,
                    plat,
                    threshold=50.0,
                    opts={"crash": True},
                ),
                BatchTask("crashy-iso", app, plat, threshold=50.0),
            ]
            outcomes = api.run_batch(tasks, workers=workers)
        assert outcomes[0].ok and outcomes[2].ok
        crash = outcomes[1]
        assert not crash.ok
        assert crash.error_kind is ErrorKind.CRASH
        assert "TypeError" in crash.error

    def test_bad_opts_crash_is_isolated(self, instance):
        """A TypeError from unknown solver opts must not escape."""
        app, plat = instance
        tasks = [
            BatchTask("greedy-min-fp", app, plat, threshold=50.0),
            BatchTask(
                "greedy-min-fp",
                app,
                plat,
                threshold=50.0,
                opts={"definitely_not_an_opt": 1},
            ),
        ]
        for workers in (None, 2):
            outcomes = api.run_batch(tasks, workers=workers)
            assert outcomes[0].ok
            assert outcomes[1].error_kind is ErrorKind.CRASH
            assert "TypeError" in outcomes[1].error

    @pytest.mark.parametrize("workers", [None, 2])
    def test_mixed_crash_timeout_batches_serial_equals_parallel(
        self, workers, instance
    ):
        app, plat = instance
        policy = BatchPolicy(timeout=0.25)
        with register_synthetic("crashy-mix", crashy_min_fp), \
                register_synthetic("sleepy-mix", sleepy_min_fp):
            tasks = [
                BatchTask("crashy-mix", app, plat, threshold=50.0),
                BatchTask(
                    "crashy-mix", app, plat, threshold=50.0,
                    opts={"crash": True},
                ),
                BatchTask(
                    "sleepy-mix", app, plat, threshold=50.0,
                    opts={"sleep": 5.0},
                ),
                BatchTask("sleepy-mix", app, plat, threshold=50.0),
                BatchTask("greedy-min-fp", app, plat, threshold=1e-9),
            ]
            outcomes = api.run_batch(tasks, workers=workers, policy=policy)
        kinds = [o.error_kind for o in outcomes]
        assert kinds == [
            None,
            ErrorKind.CRASH,
            ErrorKind.TIMEOUT,
            None,
            ErrorKind.INFEASIBLE,
        ]
        assert outcomes[0].ok and outcomes[3].ok

    def test_error_kinds_for_structural_failures(self, instance):
        app, plat = instance
        # out-of-domain dispatch: alg1 needs Fully Homogeneous
        outcomes = api.run_batch(
            [BatchTask("alg1", app, plat, threshold=50.0)]
        )
        assert outcomes[0].error_kind is ErrorKind.UNSUPPORTED


class TestRetries:
    def test_transient_failure_retried_to_success(self, tmp_path, instance):
        app, plat = instance
        scratch = tmp_path / "flaky"
        policy = BatchPolicy(retries=2)
        with register_synthetic("flaky-ok", flaky_min_fp):
            outcomes = api.run_batch(
                [
                    BatchTask(
                        "flaky-ok",
                        app,
                        plat,
                        threshold=50.0,
                        opts={"fail_first": 2, "scratch": str(scratch)},
                    )
                ],
                policy=policy,
            )
        assert outcomes[0].ok
        assert outcomes[0].attempts == 3
        assert invocations(scratch) == 3

    def test_retries_exhausted_reports_crash(self, tmp_path, instance):
        app, plat = instance
        scratch = tmp_path / "flaky"
        policy = BatchPolicy(retries=1)
        with register_synthetic("flaky-bad", flaky_min_fp):
            outcomes = api.run_batch(
                [
                    BatchTask(
                        "flaky-bad",
                        app,
                        plat,
                        threshold=50.0,
                        opts={"fail_first": 10, "scratch": str(scratch)},
                    )
                ],
                policy=policy,
            )
        assert not outcomes[0].ok
        assert outcomes[0].error_kind is ErrorKind.CRASH
        assert outcomes[0].attempts == 2
        assert invocations(scratch) == 2

    def test_infeasible_never_retried(self, instance):
        app, plat = instance
        policy = BatchPolicy(
            retries=3, retry_on=frozenset(ErrorKind)
        )
        outcomes = api.run_batch(
            [BatchTask("greedy-min-fp", app, plat, threshold=1e-9)],
            policy=policy,
        )
        assert outcomes[0].error_kind is ErrorKind.INFEASIBLE
        assert outcomes[0].attempts == 1


class TestTimeouts:
    @pytest.mark.parametrize("workers", [None, 2])
    def test_timeout_produces_timeout_kind(self, workers, instance):
        app, plat = instance
        policy = BatchPolicy(timeout=0.2)
        with register_synthetic("sleepy-to", sleepy_min_fp):
            outcomes = api.run_batch(
                [
                    BatchTask(
                        "sleepy-to", app, plat, threshold=50.0,
                        opts={"sleep": 5.0},
                    ),
                    BatchTask("sleepy-to", app, plat, threshold=50.0),
                ],
                workers=workers,
                policy=policy,
            )
        assert outcomes[0].error_kind is ErrorKind.TIMEOUT
        assert "TaskTimeoutError" in outcomes[0].error
        assert outcomes[1].ok

    def test_timed_out_task_is_retried(self, instance):
        app, plat = instance
        policy = BatchPolicy(retries=1, timeout=0.2)
        with register_synthetic("sleepy-rt", sleepy_min_fp):
            outcomes = api.run_batch(
                [
                    BatchTask(
                        "sleepy-rt", app, plat, threshold=50.0,
                        opts={"sleep": 5.0},
                    )
                ],
                policy=policy,
            )
        assert outcomes[0].error_kind is ErrorKind.TIMEOUT
        assert outcomes[0].attempts == 2
