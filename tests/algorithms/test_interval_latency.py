"""Tests for interval-mapping latency on Fully Heterogeneous platforms
(the paper's open problem, Section 4.1)."""

import pytest

from repro.algorithms.bicriteria import enumerate_evaluations
from repro.algorithms.mono import (
    minimize_latency_general,
    minimize_latency_interval_exact,
    minimize_latency_interval_heuristic,
)
from repro.exceptions import SolverError
from repro.workloads.synthetic import (
    random_application,
    random_fully_heterogeneous,
)

from tests.helpers import make_instance


def exhaustive_interval_optimum(app, plat):
    """Best latency over all interval mappings (replication included —
    it never wins, which the assertion below double-checks)."""
    return min(ev.latency for ev in enumerate_evaluations(app, plat))


class TestExactBranchAndBound:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_exhaustive(self, seed):
        app, plat = make_instance("fully-heterogeneous", n=3, m=4, seed=seed)
        result = minimize_latency_interval_exact(app, plat)
        assert result.latency == pytest.approx(
            exhaustive_interval_optimum(app, plat), rel=1e-12
        )
        assert not result.mapping.uses_replication

    def test_figure34(self, fig34):
        result = minimize_latency_interval_exact(
            fig34.application, fig34.platform
        )
        assert result.latency == pytest.approx(7.0)
        assert result.mapping.num_intervals == 2

    def test_size_guards(self):
        app = random_application(13, seed=1)
        plat = random_fully_heterogeneous(4, seed=2)
        with pytest.raises(SolverError):
            minimize_latency_interval_exact(app, plat)

    def test_at_least_general_relaxation(self):
        """General mappings relax interval mappings: SP value is a lower
        bound on the interval optimum."""
        for seed in range(5):
            app, plat = make_instance(
                "fully-heterogeneous", n=4, m=4, seed=seed
            )
            lower = minimize_latency_general(app, plat).latency
            exact = minimize_latency_interval_exact(app, plat).latency
            assert exact >= lower - 1e-9


class TestShortestPathHeuristic:
    @pytest.mark.parametrize("seed", range(10))
    def test_certified_results_match_exact(self, seed):
        app, plat = make_instance("fully-heterogeneous", n=4, m=5, seed=seed)
        heur = minimize_latency_interval_heuristic(app, plat)
        exact = minimize_latency_interval_exact(app, plat)
        if heur.extras.get("certified"):
            assert heur.latency == pytest.approx(exact.latency, rel=1e-12)
        else:
            assert heur.latency >= exact.latency - 1e-9
        assert heur.latency >= heur.extras["lower_bound"] - 1e-9

    def test_figure34_certified(self, fig34):
        heur = minimize_latency_interval_heuristic(
            fig34.application, fig34.platform
        )
        assert heur.extras["certified"]
        assert heur.latency == pytest.approx(7.0)

    def test_repair_produces_valid_interval_mapping(self):
        # hunt for an instance where the SP path is not interval-compatible
        for seed in range(60):
            app, plat = make_instance(
                "fully-heterogeneous", n=5, m=4, seed=seed
            )
            heur = minimize_latency_interval_heuristic(app, plat)
            if not heur.extras.get("certified"):
                assert heur.mapping.num_stages == app.num_stages
                assert not heur.mapping.uses_replication
                return
        pytest.skip("no repair-needing instance found in the seed range")
