"""Tests for Algorithms 1-4 (Theorems 5-6) against the exhaustive baseline."""

import pytest

from repro.algorithms.bicriteria import (
    algorithm1_minimize_fp,
    algorithm2_minimize_latency,
    algorithm3_minimize_fp,
    algorithm4_minimize_latency,
    closed_form_replication_bound,
    exhaustive_minimize_fp,
    exhaustive_minimize_latency,
    minimal_replication_for_fp,
)
from repro.core import IntervalMapping, Platform, latency
from repro.exceptions import InfeasibleProblemError, SolverError
from repro.workloads.synthetic import random_application

from tests.helpers import make_instance


def latency_thresholds(app, plat):
    """A spread of interesting latency thresholds for an instance."""
    single = latency(
        IntervalMapping.single_interval(app.num_stages, {plat.fastest().index}),
        app,
        plat,
    )
    full = latency(
        IntervalMapping.single_interval(
            app.num_stages, range(1, plat.size + 1)
        ),
        app,
        plat,
    )
    return [single, 0.5 * (single + full), full, 2 * full]


class TestAlgorithm1:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("kind", ["fully-homogeneous", "fully-homogeneous-failhet"])
    def test_matches_exhaustive(self, seed, kind):
        app, plat = make_instance(kind, n=3, m=4, seed=seed)
        for threshold in latency_thresholds(app, plat):
            result = algorithm1_minimize_fp(app, plat, threshold)
            exact = exhaustive_minimize_fp(app, plat, threshold)
            assert result.failure_probability == pytest.approx(
                exact.failure_probability, abs=1e-12
            ), threshold
            assert result.latency <= threshold + 1e-9

    def test_closed_form_agrees_with_scan(self):
        app = random_application(3, seed=11)
        plat = Platform.fully_homogeneous(
            5, speed=2.0, bandwidth=3.0, failure_probability=0.4
        )
        for threshold in latency_thresholds(app, plat):
            result = algorithm1_minimize_fp(app, plat, threshold)
            k_formula = closed_form_replication_bound(app, plat, threshold)
            assert result.extras["replication"] == k_formula

    def test_uses_most_reliable(self):
        app = random_application(2, seed=3)
        plat = Platform.fully_homogeneous(
            4, speed=1.0, bandwidth=1.0,
            failure_probabilities=[0.9, 0.1, 0.5, 0.2],
        )
        # generous threshold: all 4 fit; tighter: the 2 most reliable
        tight = latency(
            IntervalMapping.single_interval(2, {1, 2}), app, plat
        )
        result = algorithm1_minimize_fp(app, plat, tight)
        assert result.mapping.used_processors == frozenset({2, 4})

    def test_infeasible_threshold(self, small_app, hom_platform):
        with pytest.raises(InfeasibleProblemError):
            algorithm1_minimize_fp(small_app, hom_platform, 0.01)

    def test_rejects_wrong_platform(self, small_app, comm_hom_platform):
        with pytest.raises(SolverError):
            algorithm1_minimize_fp(small_app, comm_hom_platform, 100.0)

    def test_zero_input_volume_unbounded_replication(self):
        from repro.core import PipelineApplication

        app = PipelineApplication(works=(2.0,), volumes=(0.0, 1.0))
        plat = Platform.fully_homogeneous(
            4, speed=1.0, bandwidth=1.0, failure_probability=0.5
        )
        # latency is independent of k; every processor should be enrolled
        result = algorithm1_minimize_fp(app, plat, 5.0)
        assert result.extras["replication"] == 4
        assert closed_form_replication_bound(app, plat, 5.0) == 4
        assert closed_form_replication_bound(app, plat, 1.0) == 0


class TestAlgorithm2:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize(
        "fp_threshold", [1.0, 0.5, 0.2, 0.05, 0.01]
    )
    def test_matches_exhaustive(self, seed, fp_threshold):
        app, plat = make_instance("fully-homogeneous", n=3, m=4, seed=seed)
        try:
            result = algorithm2_minimize_latency(app, plat, fp_threshold)
        except InfeasibleProblemError:
            with pytest.raises(InfeasibleProblemError):
                exhaustive_minimize_latency(app, plat, fp_threshold)
            return
        exact = exhaustive_minimize_latency(app, plat, fp_threshold)
        assert result.latency == pytest.approx(exact.latency, rel=1e-9)
        assert result.failure_probability <= fp_threshold + 1e-9

    def test_infeasible(self, small_app):
        plat = Platform.fully_homogeneous(2, failure_probability=0.9)
        with pytest.raises(InfeasibleProblemError):
            algorithm2_minimize_latency(small_app, plat, 0.5)

    def test_trivial_threshold_single_processor(self, small_app, hom_platform):
        result = algorithm2_minimize_latency(small_app, hom_platform, 1.0)
        assert result.extras["replication"] == 1


class TestAlgorithm3:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_exhaustive(self, seed):
        app, plat = make_instance(
            "comm-homogeneous-failhom", n=3, m=4, seed=seed
        )
        for threshold in latency_thresholds(app, plat):
            try:
                result = algorithm3_minimize_fp(app, plat, threshold)
            except InfeasibleProblemError:
                with pytest.raises(InfeasibleProblemError):
                    exhaustive_minimize_fp(app, plat, threshold)
                continue
            exact = exhaustive_minimize_fp(app, plat, threshold)
            assert result.failure_probability == pytest.approx(
                exact.failure_probability, abs=1e-12
            )

    def test_enrolls_fastest(self, small_app, comm_hom_platform):
        result = algorithm3_minimize_fp(small_app, comm_hom_platform, 12.0)
        # speeds are (3.0, 2.0, 1.0, 2.5): the 2 fastest are P1, P4
        assert result.mapping.used_processors == frozenset({1, 4})

    def test_rejects_failure_heterogeneous(self, small_app):
        plat = Platform.communication_homogeneous(
            [1.0, 2.0], failure_probabilities=[0.1, 0.2]
        )
        with pytest.raises(SolverError):
            algorithm3_minimize_fp(small_app, plat, 100.0)

    def test_rejects_fully_heterogeneous(self, small_app, het_platform):
        plat = het_platform.with_failure_probabilities(
            [0.3] * het_platform.size
        )
        with pytest.raises(SolverError):
            algorithm3_minimize_fp(small_app, plat, 100.0)


class TestAlgorithm4:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("fp_threshold", [1.0, 0.5, 0.1, 0.01])
    def test_matches_exhaustive(self, seed, fp_threshold):
        app, plat = make_instance(
            "comm-homogeneous-failhom", n=3, m=4, seed=seed
        )
        try:
            result = algorithm4_minimize_latency(app, plat, fp_threshold)
        except InfeasibleProblemError:
            with pytest.raises(InfeasibleProblemError):
                exhaustive_minimize_latency(app, plat, fp_threshold)
            return
        exact = exhaustive_minimize_latency(app, plat, fp_threshold)
        assert result.latency == pytest.approx(exact.latency, rel=1e-9)

    def test_minimal_replication_closed_form(self):
        plat = Platform.communication_homogeneous(
            [1.0, 1.0, 1.0], failure_probabilities=[0.5] * 3
        )
        assert minimal_replication_for_fp(plat, 0.6) == 1
        assert minimal_replication_for_fp(plat, 0.5) == 1
        assert minimal_replication_for_fp(plat, 0.25) == 2
        assert minimal_replication_for_fp(plat, 0.125) == 3
        with pytest.raises(InfeasibleProblemError):
            minimal_replication_for_fp(plat, 0.1)

    def test_perfectly_reliable_processor(self, small_app):
        plat = Platform.communication_homogeneous(
            [2.0, 1.0], failure_probabilities=[0.0, 0.0]
        )
        result = algorithm4_minimize_latency(small_app, plat, 0.0)
        assert result.extras["replication"] == 1
        assert result.mapping.used_processors == frozenset({1})
