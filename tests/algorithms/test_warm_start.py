"""Warm-start correctness for the heuristic solvers.

The contract (:mod:`repro.algorithms.heuristics.warm`): the returned
result never ranks worse than the best supplied warm start evaluated at
the current threshold, and ``warm_starts=None`` leaves every solver
bit-identical to its previous behaviour.
"""

import pytest

from repro.algorithms.heuristics import (
    anneal_minimize_fp,
    anneal_minimize_latency,
    greedy_minimize_fp,
    greedy_minimize_latency,
    local_search_minimize_fp,
    local_search_minimize_latency,
)
from repro.core.mapping import IntervalMapping
from repro.core.metrics import evaluate
from repro.core.serialization import mapping_to_dict
from repro.exceptions import SolverError

from tests.helpers import make_instance

MIN_FP_SOLVERS = [
    greedy_minimize_fp,
    local_search_minimize_fp,
    anneal_minimize_fp,
]
MIN_LAT_SOLVERS = [
    greedy_minimize_latency,
    local_search_minimize_latency,
    anneal_minimize_latency,
]


@pytest.fixture
def instance():
    return make_instance("comm-homogeneous", 5, 4, 31)


def _exact_optimum(app, plat, threshold):
    from repro.algorithms.bicriteria.exhaustive import exhaustive_minimize_fp

    return exhaustive_minimize_fp(app, plat, threshold)


class TestNeverWorseThanSeed:
    @pytest.mark.parametrize("solver", MIN_FP_SOLVERS)
    @pytest.mark.parametrize("seed_threshold", [30.0, 45.0])
    def test_min_fp_result_never_worse_than_feasible_seed(
        self, instance, solver, seed_threshold
    ):
        """Seeding with the solver's own result at a tighter threshold
        (always feasible at the looser one) can only help."""
        app, plat = instance
        seed_result = solver(app, plat, seed_threshold)
        for threshold in (seed_threshold, seed_threshold + 15.0):
            warm = solver(
                app, plat, threshold, warm_starts=[seed_result.mapping]
            )
            assert warm.latency <= threshold + 1e-9
            assert (warm.failure_probability, warm.latency) <= (
                seed_result.failure_probability,
                seed_result.latency,
            )

    @pytest.mark.parametrize("solver", MIN_LAT_SOLVERS)
    def test_min_latency_result_never_worse_than_feasible_seed(
        self, instance, solver
    ):
        app, plat = instance
        seed_result = solver(app, plat, 0.3)
        warm = solver(app, plat, 0.5, warm_starts=[seed_result.mapping])
        assert warm.failure_probability <= 0.5 + 1e-9
        assert warm.latency <= seed_result.latency

    @pytest.mark.parametrize("solver", MIN_FP_SOLVERS)
    def test_exact_seed_is_returned_verbatim(self, instance, solver):
        """Seeded with the exhaustive optimum, every heuristic must
        report exactly the optimal objectives (it cannot improve, and
        the contract forbids doing worse)."""
        app, plat = instance
        threshold = 40.0
        optimum = _exact_optimum(app, plat, threshold)
        warm = solver(
            app, plat, threshold, warm_starts=[optimum.mapping]
        )
        assert warm.failure_probability == optimum.failure_probability

    @pytest.mark.parametrize("solver", MIN_FP_SOLVERS)
    def test_infeasible_seed_does_not_poison_the_search(
        self, instance, solver
    ):
        """A warm start that violates the threshold is still accepted as
        a hint; the result must nevertheless be feasible and no worse
        than the cold run's feasible candidates allow."""
        app, plat = instance
        # whole pipeline on the slowest processor: latency-infeasible at
        # a tight threshold on this instance
        slow = min(
            range(1, plat.size + 1), key=lambda u: plat.speed(u)
        )
        bad_seed = IntervalMapping.single_interval(app.num_stages, {slow})
        tight = evaluate(bad_seed, app, plat).latency * 0.5
        try:
            cold = solver(app, plat, tight)
        except Exception:
            pytest.skip("threshold infeasible even for the cold run")
        warm = solver(app, plat, tight, warm_starts=[bad_seed])
        assert warm.latency <= tight + 1e-9 * max(1.0, tight)
        assert warm.failure_probability <= cold.failure_probability + 1e-12


class TestArgumentForms:
    @pytest.mark.parametrize("solver", MIN_FP_SOLVERS)
    def test_serialized_dict_equals_mapping_object(self, instance, solver):
        app, plat = instance
        seed_result = solver(app, plat, 35.0)
        via_obj = solver(
            app, plat, 50.0, warm_starts=[seed_result.mapping]
        )
        via_dict = solver(
            app,
            plat,
            50.0,
            warm_starts=[mapping_to_dict(seed_result.mapping)],
        )
        assert (via_obj.latency, via_obj.failure_probability) == (
            via_dict.latency,
            via_dict.failure_probability,
        )

    @pytest.mark.parametrize("solver", MIN_FP_SOLVERS)
    def test_none_and_empty_are_bit_identical_to_default(
        self, instance, solver
    ):
        app, plat = instance
        base = solver(app, plat, 45.0)
        for warm_starts in (None, []):
            again = solver(app, plat, 45.0, warm_starts=warm_starts)
            assert (again.latency, again.failure_probability) == (
                base.latency,
                base.failure_probability,
            )
            assert again.mapping == base.mapping

    def test_general_mapping_rejected(self, instance):
        app, plat = instance
        bogus = {"schema": 1, "kind": "general-mapping", "assignment": [1] * 5}
        with pytest.raises(SolverError, match="interval mapping"):
            greedy_minimize_fp(app, plat, 50.0, warm_starts=[bogus])

    def test_junk_entry_rejected(self, instance):
        app, plat = instance
        with pytest.raises(SolverError, match="warm starts"):
            greedy_minimize_fp(app, plat, 50.0, warm_starts=[42])


class TestEngineDispatch:
    def test_warm_starts_flow_through_registry_solve(self, instance):
        from repro.api import solve

        app, plat = instance
        seed_result = solve("greedy-min-fp", app, plat, 35.0)
        warm = solve(
            "greedy-min-fp",
            app,
            plat,
            60.0,
            warm_starts=[mapping_to_dict(seed_result.mapping)],
        )
        assert warm.failure_probability <= seed_result.failure_probability

    def test_warm_startable_metadata(self):
        from repro.api import get_solver

        for name in (
            "greedy-min-fp",
            "greedy-min-latency",
            "local-search-min-fp",
            "local-search-min-latency",
            "anneal-min-fp",
            "anneal-min-latency",
        ):
            assert get_solver(name).warm_startable
        for name in ("single-interval-min-fp", "exhaustive-min-fp", "alg1"):
            assert not get_solver(name).warm_startable
