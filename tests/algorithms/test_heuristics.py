"""Tests for the heuristics (single-interval grid, greedy, local search,
annealing) on the NP-hard / open problem classes."""

import pytest

from repro.algorithms.bicriteria import (
    exhaustive_minimize_fp,
    exhaustive_minimize_latency,
)
from repro.algorithms.heuristics import (
    AnnealingSchedule,
    anneal_minimize_fp,
    anneal_minimize_latency,
    balanced_partition,
    greedy_minimize_fp,
    greedy_minimize_latency,
    local_search_minimize_fp,
    local_search_minimize_latency,
    single_interval_candidates,
    single_interval_minimize_fp,
    single_interval_minimize_latency,
)
from repro.core import failure_probability, latency
from repro.exceptions import InfeasibleProblemError
from repro.workloads.reference import figure5_instance
from repro.workloads.synthetic import random_application

from tests.helpers import make_instance

MIN_FP_HEURISTICS = [
    single_interval_minimize_fp,
    greedy_minimize_fp,
    local_search_minimize_fp,
    anneal_minimize_fp,
]
MIN_LAT_HEURISTICS = [
    single_interval_minimize_latency,
    greedy_minimize_latency,
    local_search_minimize_latency,
    anneal_minimize_latency,
]


class TestSingleIntervalGrid:
    def test_candidates_are_single_interval(self, fig5):
        for cand in single_interval_candidates(
            fig5.application, fig5.platform
        ):
            assert cand.mapping.is_single_interval

    def test_exact_within_single_interval_on_comm_hom(self, fig5):
        """The grid must find the best single-interval FP under L=22: the
        paper's 0.64."""
        result = single_interval_minimize_fp(
            fig5.application, fig5.platform, fig5.latency_threshold
        )
        assert result.failure_probability == pytest.approx(0.64, abs=1e-12)
        assert result.extras["exact_within_single_interval"]

    @pytest.mark.parametrize("seed", range(4))
    def test_grid_beats_or_ties_all_single_interval_mappings(self, seed):
        """Exhaustive check of the exactness claim on random instances."""
        from itertools import combinations

        from repro.core import IntervalMapping

        app, plat = make_instance("comm-homogeneous", n=3, m=5, seed=seed)
        thresholds = [c.latency for c in single_interval_candidates(app, plat)]
        threshold = sorted(thresholds)[len(thresholds) // 2]
        result = single_interval_minimize_fp(app, plat, threshold)
        best_fp = 1.0
        for k in range(1, plat.size + 1):
            for procs in combinations(range(1, plat.size + 1), k):
                mapping = IntervalMapping.single_interval(3, procs)
                if latency(mapping, app, plat) <= threshold + 1e-9:
                    best_fp = min(
                        best_fp, failure_probability(mapping, plat)
                    )
        assert result.failure_probability == pytest.approx(best_fp, abs=1e-12)

    def test_infeasible(self, fig5):
        with pytest.raises(InfeasibleProblemError):
            single_interval_minimize_fp(fig5.application, fig5.platform, 0.01)
        with pytest.raises(InfeasibleProblemError):
            single_interval_minimize_latency(
                fig5.application, fig5.platform, 1e-9
            )


class TestBalancedPartition:
    def test_covers_all_stages(self):
        app = random_application(7, seed=1)
        for p in range(1, 8):
            intervals = balanced_partition(app, p)
            assert intervals[0].start == 1
            assert intervals[-1].end == 7
            assert len(intervals) == p

    def test_p_larger_than_stages_clamps(self):
        app = random_application(2, seed=1)
        assert len(balanced_partition(app, 5)) == 2

    def test_balances_work(self):
        from repro.core import PipelineApplication

        app = PipelineApplication(
            works=(10, 10, 10, 10), volumes=(0,) * 5
        )
        halves = balanced_partition(app, 2)
        assert [iv.length for iv in halves] == [2, 2]


class TestHeuristicsOnFigure5:
    """The Figure 5 instance is the paper's hard case: heuristics must
    beat the single-interval baseline and ideally find the optimum."""

    def test_greedy_finds_two_interval_optimum(self, fig5):
        result = greedy_minimize_fp(
            fig5.application, fig5.platform, fig5.latency_threshold
        )
        assert result.failure_probability == pytest.approx(
            fig5.claimed_two_interval_fp, rel=1e-9
        )

    def test_local_search_finds_two_interval_optimum(self, fig5):
        result = local_search_minimize_fp(
            fig5.application, fig5.platform, fig5.latency_threshold, seed=0
        )
        assert result.failure_probability == pytest.approx(
            fig5.claimed_two_interval_fp, rel=1e-9
        )

    def test_annealing_finds_two_interval_optimum(self, fig5):
        result = anneal_minimize_fp(
            fig5.application, fig5.platform, fig5.latency_threshold, seed=1
        )
        assert result.failure_probability == pytest.approx(
            fig5.claimed_two_interval_fp, rel=1e-9
        )


class TestHeuristicsVsExhaustive:
    @pytest.mark.parametrize("solver", MIN_FP_HEURISTICS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_min_fp_feasible_and_bounded_by_optimum(self, solver, seed):
        app, plat = make_instance("comm-homogeneous", n=3, m=4, seed=seed)
        threshold = sorted(
            c.latency for c in single_interval_candidates(app, plat)
        )[3]
        exact = exhaustive_minimize_fp(app, plat, threshold)
        result = solver(app, plat, threshold)
        assert result.latency <= threshold + 1e-6
        assert (
            result.failure_probability
            >= exact.failure_probability - 1e-12
        )

    @pytest.mark.parametrize("solver", MIN_LAT_HEURISTICS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_min_latency_feasible_and_bounded_by_optimum(self, solver, seed):
        app, plat = make_instance("comm-homogeneous", n=3, m=4, seed=seed)
        fp_threshold = 0.3
        try:
            result = solver(app, plat, fp_threshold)
        except InfeasibleProblemError:
            with pytest.raises(InfeasibleProblemError):
                exhaustive_minimize_latency(app, plat, fp_threshold)
            return
        exact = exhaustive_minimize_latency(app, plat, fp_threshold)
        assert result.failure_probability <= fp_threshold + 1e-6
        assert result.latency >= exact.latency - 1e-9

    @pytest.mark.parametrize("solver", MIN_FP_HEURISTICS)
    def test_min_fp_works_on_fully_heterogeneous(self, solver):
        app, plat = make_instance("fully-heterogeneous", n=3, m=4, seed=7)
        threshold = 3 * latency(
            exhaustive_minimize_fp(app, plat, 1e9).mapping, app, plat
        )
        result = solver(app, plat, threshold)
        assert result.latency <= threshold + 1e-6


class TestAnnealingConfig:
    def test_schedule_validation(self):
        with pytest.raises(ValueError):
            AnnealingSchedule(cooling=1.5)
        with pytest.raises(ValueError):
            AnnealingSchedule(initial_temperature=0)
        with pytest.raises(ValueError):
            AnnealingSchedule(steps=0)

    def test_annealing_deterministic_with_seed(self, fig5):
        a = anneal_minimize_fp(
            fig5.application, fig5.platform, 22.0, seed=123,
            schedule=AnnealingSchedule(steps=300),
        )
        b = anneal_minimize_fp(
            fig5.application, fig5.platform, 22.0, seed=123,
            schedule=AnnealingSchedule(steps=300),
        )
        assert a.failure_probability == b.failure_probability
        assert a.mapping == b.mapping
