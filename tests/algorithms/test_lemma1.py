"""Machine-checked Lemma 1: single-interval dominance.

On Fully Homogeneous platforms (any failure probabilities) and on
Communication Homogeneous / Failure Homogeneous platforms, the paper's
Lemma 1 constructs, from *any* interval mapping, a single-interval
mapping that is at least as good on **both** criteria.  We re-implement
the two constructions from the proof and property-check the dominance on
random mappings; we also verify the Figure 5 counterexample (Comm. Hom. +
Failure *Heterogeneous*) where the lemma genuinely fails.
"""

import pytest
from hypothesis import given, settings

from repro.core import (
    IntervalMapping,
    failure_probability,
    latency,
)
from repro.workloads.reference import figure5_instance

from tests.strategies import (
    app_platform_mapping,
    comm_homogeneous_platforms,
    fully_homogeneous_platforms,
)


def lemma1_fully_homogeneous(mapping, platform):
    """Proof construction, Fully Homogeneous case: replicate the whole
    pipeline on the k0 most reliable processors, k0 = |alloc(1)|."""
    k0 = len(mapping.allocations[0])
    most_reliable = [
        p.index for p in platform.by_reliability_descending()[:k0]
    ]
    return IntervalMapping.single_interval(mapping.num_stages, most_reliable)


def lemma1_comm_homogeneous(mapping, platform):
    """Proof construction, Comm. Hom. + Failure Hom. case: replicate on
    the k fastest processors, k = min_j |alloc(j)|."""
    k = min(len(a) for a in mapping.allocations)
    fastest = [p.index for p in platform.by_speed_descending()[:k]]
    return IntervalMapping.single_interval(mapping.num_stages, fastest)


@given(app_platform_mapping(fully_homogeneous_platforms(max_processors=6)))
@settings(max_examples=200, deadline=None)
def test_lemma1_dominance_fully_homogeneous(triple):
    app, platform, mapping = triple
    single = lemma1_fully_homogeneous(mapping, platform)
    assert latency(single, app, platform) <= (
        latency(mapping, app, platform) + 1e-9
    )
    assert failure_probability(single, platform) <= (
        failure_probability(mapping, platform) + 1e-12
    )


@given(
    app_platform_mapping(
        comm_homogeneous_platforms(max_processors=6, failure_homogeneous=True)
    )
)
@settings(max_examples=200, deadline=None)
def test_lemma1_dominance_comm_homogeneous_failure_homogeneous(triple):
    app, platform, mapping = triple
    single = lemma1_comm_homogeneous(mapping, platform)
    assert latency(single, app, platform) <= (
        latency(mapping, app, platform) + 1e-9
    )
    assert failure_probability(single, platform) <= (
        failure_probability(mapping, platform) + 1e-12
    )


def test_lemma1_fails_on_failure_heterogeneous():
    """Figure 5: no single-interval mapping under L=22 gets close to the
    two-interval optimum's FP — the lemma cannot be extended."""
    fig5 = figure5_instance()
    app, plat = fig5.application, fig5.platform
    two = fig5.two_interval_mapping
    fp_two = failure_probability(two, plat)
    assert latency(two, app, plat) <= fig5.latency_threshold + 1e-9

    from repro.algorithms.heuristics import single_interval_candidates

    feasible_single_fps = [
        c.failure_probability
        for c in single_interval_candidates(app, plat)
        if c.latency <= fig5.latency_threshold + 1e-9
    ]
    assert min(feasible_single_fps) == pytest.approx(0.64, abs=1e-12)
    assert fp_two < min(feasible_single_fps)


def test_lemma1_construction_matches_paper_structure(fig5):
    """Sanity of the proof helpers on a concrete mapping."""
    mapping = IntervalMapping([(1, 1), (2, 2)], [{2, 3}, {4, 5, 6}])
    single = lemma1_comm_homogeneous(mapping, fig5.platform)
    assert single.is_single_interval
    assert len(single.allocations[0]) == 2  # min(2, 3)
    # the two fastest processors are fast ones (speed 100)
    speeds = {fig5.platform.speed(u) for u in single.allocations[0]}
    assert speeds == {100.0}
