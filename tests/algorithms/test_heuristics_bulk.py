"""Scalar <-> bulk equivalence for the heuristics' candidate pools.

The PR 4 contract: with ``use_bulk`` on, every heuristic must take
*identical decisions* to the scalar path — same accepted-move sequence
(local search, annealing), same enrolment sequence (greedy), same grid
winner (single-interval) — because bulk scores only prefilter and all
decisions happen on scalar-exact values.  These tests assert that
bit-for-bit, including the m > MASK_TABLE_LIMIT shapes where the bulk
evaluator falls back from per-bitmask tables to the boolean bit-matrix
kernel.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

np = pytest.importorskip("numpy", exc_type=ImportError)

from repro.algorithms.heuristics import (
    AnnealingSchedule,
    anneal_minimize_fp,
    anneal_minimize_latency,
    greedy_minimize_fp,
    greedy_minimize_latency,
    local_search_minimize_fp,
    local_search_minimize_latency,
    neighbor_block,
    neighbor_blocks,
    neighbor_rows,
    neighbors,
    random_mapping,
    row_mapping,
    single_interval_candidates,
    single_interval_mappings,
    single_interval_minimize_fp,
    single_interval_minimize_latency,
    single_interval_replica_sets,
)
from repro.core import IntervalMapping, Platform, latency
from repro.core import metrics_kernels
from repro.core.metrics_bulk import MASK_TABLE_LIMIT, BlockBuilder
from repro.exceptions import InfeasibleProblemError, SolverError

from tests.helpers import make_instance
from tests.strategies import app_platform_mapping, comm_homogeneous_platforms

KINDS = ["comm-homogeneous", "fully-heterogeneous", "fully-homogeneous-failhet"]


def _loose_latency_threshold(app, plat, factor=2.0):
    everything = IntervalMapping.single_interval(
        app.num_stages, set(range(1, plat.size + 1))
    )
    return factor * latency(everything, app, plat)


def _wide_platform(m=MASK_TABLE_LIMIT + 1, seed=0):
    """A platform wide enough to force the bit-matrix bulk fallback."""
    rng = random.Random(seed)
    return Platform.communication_homogeneous(
        [rng.uniform(1.0, 8.0) for _ in range(m)],
        bandwidth=rng.uniform(2.0, 8.0),
        failure_probabilities=[rng.uniform(0.05, 0.6) for _ in range(m)],
    )


# ----------------------------------------------------------------------
# neighbourhood rows and blocks
# ----------------------------------------------------------------------
class TestNeighborRows:
    @settings(max_examples=60, deadline=None)
    @given(app_platform_mapping())
    def test_rows_decode_to_neighbors_in_order(self, triple):
        app, plat, mapping = triple
        scalar = list(neighbors(mapping, plat.size))
        rows = list(neighbor_rows(mapping, plat.size))
        assert len(rows) == len(scalar)
        assert [row_mapping(r, plat.size) for r in rows] == scalar

    @settings(max_examples=25, deadline=None)
    @given(app_platform_mapping(), st.integers(min_value=1, max_value=7))
    def test_blocks_chunking_preserves_order(self, triple, block_size):
        app, plat, mapping = triple
        scalar = list(neighbors(mapping, plat.size))
        chunks = list(
            neighbor_blocks(
                mapping, app.num_stages, plat.size, block_size=block_size
            )
        )
        assert all(len(b) <= max(block_size, 1) or True for b in chunks)
        decoded = [m for b in chunks for m in b.mappings()]
        assert decoded == scalar
        if scalar:
            block = neighbor_block(mapping, app.num_stages, plat.size)
            assert list(block.mappings()) == scalar

    def test_wide_platform_rows(self):
        plat = _wide_platform()
        mapping = random_mapping(5, plat.size, random.Random(0))
        scalar = list(neighbors(mapping, plat.size))
        rows = list(neighbor_rows(mapping, plat.size))
        assert [row_mapping(r, plat.size) for r in rows] == scalar


class TestBlockBuilder:
    def test_append_widens_and_preserves_order(self):
        builder = BlockBuilder(num_stages=6, num_processors=2, capacity=1)
        builder.append((6,), (0b01,))
        builder.append((2, 6), (0b01, 0b10))  # wider than initial width
        builder.append((6,), (0b11,))
        block = builder.build()
        assert len(block) == 3
        decoded = list(block.mappings())
        assert decoded[0] == IntervalMapping.single_interval(6, {1})
        assert decoded[1] == IntervalMapping([(1, 2), (3, 6)], [{1}, {2}])
        assert decoded[2] == IntervalMapping.single_interval(6, {1, 2})

    def test_build_snapshots(self):
        builder = BlockBuilder(num_stages=3, num_processors=2)
        builder.append((3,), (0b01,))
        block = builder.build()
        builder.append((3,), (0b10,))
        assert len(block) == 1  # later appends do not alias the block
        assert len(builder.build()) == 2

    def test_mismatched_row_rejected(self):
        builder = BlockBuilder(num_stages=3, num_processors=2)
        with pytest.raises(SolverError):
            builder.append((3,), (0b01, 0b10))


# ----------------------------------------------------------------------
# local search and annealing trajectories
# ----------------------------------------------------------------------
def _run_both(fn, app, plat, threshold, seed, **opts):
    trace_scalar: list = []
    trace_bulk: list = []
    try:
        scalar = fn(
            app, plat, threshold,
            seed=seed, use_bulk=False, trace=trace_scalar, **opts,
        )
        infeasible = False
    except InfeasibleProblemError:
        scalar, infeasible = None, True
    if infeasible:
        with pytest.raises(InfeasibleProblemError):
            fn(
                app, plat, threshold,
                seed=seed, use_bulk=True, trace=trace_bulk, **opts,
            )
        return None, None, trace_scalar, trace_bulk
    bulk = fn(
        app, plat, threshold,
        seed=seed, use_bulk=True, trace=trace_bulk, **opts,
    )
    return scalar, bulk, trace_scalar, trace_bulk


def _assert_identical(scalar, bulk):
    assert scalar.mapping == bulk.mapping
    assert scalar.latency == bulk.latency
    assert scalar.failure_probability == bulk.failure_probability
    assert scalar.extras == bulk.extras


class TestLocalSearchEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(
        app_platform_mapping(
            platform_strategy=comm_homogeneous_platforms(
                min_processors=2, max_processors=6
            )
        ),
        st.integers(min_value=0, max_value=2**16),
    )
    def test_min_fp_trajectories_identical(self, triple, seed):
        app, plat, _ = triple
        threshold = _loose_latency_threshold(app, plat)
        scalar, bulk, t_s, t_b = _run_both(
            local_search_minimize_fp, app, plat, threshold, seed,
            restarts=3, max_steps=25,
        )
        assert t_s == t_b  # same accepted-move sequence
        if scalar is not None:
            _assert_identical(scalar, bulk)

    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("seed", range(3))
    def test_min_latency_trajectories_identical(self, kind, seed):
        app, plat = make_instance(kind, n=6, m=5, seed=seed)
        scalar, bulk, t_s, t_b = _run_both(
            local_search_minimize_latency, app, plat, 0.9, seed,
            restarts=4, max_steps=40,
        )
        assert t_s == t_b
        if scalar is not None:
            _assert_identical(scalar, bulk)

    def test_wide_platform_fallback_shapes(self):
        """m > MASK_TABLE_LIMIT exercises the bit-matrix bulk kernel."""
        plat = _wide_platform()
        app, _ = make_instance("comm-homogeneous", n=6, m=4, seed=1)
        threshold = _loose_latency_threshold(app, plat)
        scalar, bulk, t_s, t_b = _run_both(
            local_search_minimize_fp, app, plat, threshold, 0,
            restarts=2, max_steps=12,
        )
        assert t_s == t_b and t_s  # the walk actually moved
        _assert_identical(scalar, bulk)


class TestAnnealingEquivalence:
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("seed", range(3))
    def test_min_fp_walks_identical(self, kind, seed):
        app, plat = make_instance(kind, n=5, m=4, seed=seed)
        threshold = _loose_latency_threshold(app, plat)
        scalar, bulk, t_s, t_b = _run_both(
            anneal_minimize_fp, app, plat, threshold, seed,
            schedule=AnnealingSchedule(steps=250),
        )
        assert t_s == t_b  # same accepted-state sequence
        if scalar is not None:
            assert scalar.mapping == bulk.mapping
            assert scalar.latency == bulk.latency
            assert scalar.failure_probability == bulk.failure_probability

    @pytest.mark.parametrize("seed", range(2))
    def test_min_latency_walks_identical(self, seed):
        app, plat = make_instance("comm-homogeneous", n=5, m=4, seed=seed)
        scalar, bulk, t_s, t_b = _run_both(
            anneal_minimize_latency, app, plat, 0.9, seed,
            schedule=AnnealingSchedule(steps=250),
        )
        assert t_s == t_b
        if scalar is not None:
            assert scalar.mapping == bulk.mapping

    def test_wide_platform_walks_identical(self):
        plat = _wide_platform(seed=3)
        app, _ = make_instance("comm-homogeneous", n=5, m=4, seed=2)
        threshold = _loose_latency_threshold(app, plat)
        scalar, bulk, t_s, t_b = _run_both(
            anneal_minimize_fp, app, plat, threshold, 1,
            schedule=AnnealingSchedule(steps=150),
        )
        assert t_s == t_b and t_s
        assert scalar.mapping == bulk.mapping


# ----------------------------------------------------------------------
# greedy and single-interval selection
# ----------------------------------------------------------------------
class TestGreedyEquivalence:
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("seed", range(3))
    def test_min_fp_identical(self, kind, seed):
        app, plat = make_instance(kind, n=6, m=5, seed=seed)
        threshold = _loose_latency_threshold(app, plat)
        scalar = greedy_minimize_fp(app, plat, threshold, use_bulk=False)
        bulk = greedy_minimize_fp(app, plat, threshold, use_bulk=True)
        _assert_identical(scalar, bulk)

    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("seed", range(3))
    def test_min_latency_identical(self, kind, seed):
        app, plat = make_instance(kind, n=6, m=5, seed=seed)
        for bound in (0.95, 0.5):
            try:
                scalar = greedy_minimize_latency(
                    app, plat, bound, use_bulk=False
                )
            except InfeasibleProblemError:
                with pytest.raises(InfeasibleProblemError):
                    greedy_minimize_latency(app, plat, bound, use_bulk=True)
                continue
            bulk = greedy_minimize_latency(app, plat, bound, use_bulk=True)
            _assert_identical(scalar, bulk)

    def test_wide_platform_identical(self):
        plat = _wide_platform(seed=5)
        app, _ = make_instance("comm-homogeneous", n=8, m=4, seed=4)
        threshold = _loose_latency_threshold(app, plat)
        _assert_identical(
            greedy_minimize_fp(app, plat, threshold, use_bulk=False),
            greedy_minimize_fp(app, plat, threshold, use_bulk=True),
        )


class TestSingleIntervalEquivalence:
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("seed", range(3))
    def test_both_queries_identical(self, kind, seed):
        app, plat = make_instance(kind, n=5, m=6, seed=seed)
        threshold = _loose_latency_threshold(app, plat, factor=1.2)
        _assert_identical(
            single_interval_minimize_fp(app, plat, threshold, use_bulk=False),
            single_interval_minimize_fp(app, plat, threshold, use_bulk=True),
        )
        _assert_identical(
            single_interval_minimize_latency(app, plat, 0.9, use_bulk=False),
            single_interval_minimize_latency(app, plat, 0.9, use_bulk=True),
        )

    def test_replica_set_pool_matches_candidates(self):
        app, plat = make_instance("comm-homogeneous", n=5, m=6, seed=0)
        candidates = single_interval_candidates(app, plat)
        grid = single_interval_replica_sets(plat)
        assert len(candidates) == len(grid)
        for cand, (procs, k, sigma) in zip(candidates, grid):
            assert cand.mapping.allocations[0] == procs
            assert cand.extras == {"k": k, "speed_floor": sigma}
        assert single_interval_mappings(app, plat) == [
            c.mapping for c in candidates
        ]

    def test_infeasible_matches(self):
        app, plat = make_instance("comm-homogeneous", n=5, m=4, seed=0)
        for use_bulk in (False, True):
            with pytest.raises(InfeasibleProblemError):
                single_interval_minimize_fp(
                    app, plat, 1e-9, use_bulk=use_bulk
                )


# ----------------------------------------------------------------------
# recorded-trajectory equivalence (record/replay as the referee)
# ----------------------------------------------------------------------
class TestRecordedTrajectoryEquivalence:
    """The same contract, checked through the event recorder: the
    scalar and bulk runs of every heuristic must produce diff-clean
    recordings, not just equal final results."""

    @pytest.mark.parametrize(
        ("solver", "opts"),
        [
            ("single-interval-min-fp", {}),
            ("greedy-min-fp", {}),
            ("local-search-min-fp", {"seed": 11}),
            ("anneal-min-fp", {"seed": 11}),
        ],
    )
    def test_scalar_and_bulk_recordings_diff_clean(self, solver, opts):
        from repro.api import diff_runs, record_run

        app, plat = make_instance("comm-homogeneous", n=5, m=4, seed=2)
        threshold = _loose_latency_threshold(app, plat)
        _, scalar = record_run(
            solver, app, plat, threshold, use_bulk=False, **opts
        )
        _, bulk = record_run(
            solver, app, plat, threshold, use_bulk=True, **opts
        )
        report = diff_runs(scalar, bulk)
        assert report.ok, report.summary()
        assert report.events_compared > 0


# ----------------------------------------------------------------------
# knob semantics
# ----------------------------------------------------------------------
class TestUseBulkKnob:
    def test_true_without_numpy_raises(self, monkeypatch):
        import repro.core.metrics_bulk as mb

        monkeypatch.setattr(mb, "HAS_NUMPY", False)
        app, plat = make_instance("comm-homogeneous", n=4, m=3, seed=0)
        threshold = _loose_latency_threshold(app, plat)
        for fn in (
            local_search_minimize_fp,
            anneal_minimize_fp,
            greedy_minimize_fp,
            single_interval_minimize_fp,
        ):
            with pytest.raises(SolverError, match="requires numpy"):
                fn(app, plat, threshold, use_bulk=True)

    def test_auto_resolves_off_without_numpy(self, monkeypatch):
        import repro.core.metrics_bulk as mb

        monkeypatch.setattr(mb, "HAS_NUMPY", False)
        app, plat = make_instance("comm-homogeneous", n=4, m=3, seed=0)
        threshold = _loose_latency_threshold(app, plat)
        # use_bulk=None silently takes the scalar path
        result = greedy_minimize_fp(app, plat, threshold, use_bulk=None)
        assert result.mapping == greedy_minimize_fp(
            app, plat, threshold, use_bulk=False
        ).mapping


class TestBackendKnob:
    """The ``bulk_backend`` knob resolves like ``use_bulk`` one level down."""

    def test_explicit_numpy_matches_auto_trajectories(self):
        # with numba installed the default resolves to the jit backend,
        # so this doubles as the jit <-> numpy trajectory-identity check
        app, plat = make_instance("comm-homogeneous", n=5, m=4, seed=1)
        threshold = _loose_latency_threshold(app, plat)
        for fn in (anneal_minimize_fp, local_search_minimize_fp):
            t_auto: list = []
            t_numpy: list = []
            auto = fn(
                app, plat, threshold, seed=7, use_bulk=True, trace=t_auto
            )
            explicit = fn(
                app, plat, threshold,
                seed=7, use_bulk=True, bulk_backend="numpy", trace=t_numpy,
            )
            assert t_auto == t_numpy
            _assert_identical(auto, explicit)

    def test_jit_without_numba_raises(self, monkeypatch):
        import repro.core.metrics_bulk as mb

        monkeypatch.setattr(mb, "HAS_NUMBA", False)
        app, plat = make_instance("comm-homogeneous", n=4, m=3, seed=0)
        threshold = _loose_latency_threshold(app, plat)
        for fn in (
            local_search_minimize_fp,
            anneal_minimize_fp,
            greedy_minimize_fp,
            single_interval_minimize_fp,
        ):
            with pytest.raises(SolverError, match="requires numba"):
                fn(app, plat, threshold, use_bulk=True, bulk_backend="jit")

    def test_unknown_backend_rejected(self):
        app, plat = make_instance("comm-homogeneous", n=4, m=3, seed=0)
        threshold = _loose_latency_threshold(app, plat)
        with pytest.raises(SolverError, match="unknown bulk backend"):
            greedy_minimize_fp(
                app, plat, threshold, use_bulk=True, bulk_backend="cuda"
            )


@pytest.mark.skipif(
    not metrics_kernels.HAS_NUMBA, reason="numba not installed"
)
class TestJitBackendTrajectories:
    """Scalar <-> jit-backed bulk identity, mirroring the numpy legs."""

    @pytest.mark.parametrize("kind", KINDS)
    def test_annealing_trajectories_identical(self, kind):
        app, plat = make_instance(kind, n=6, m=5, seed=2)
        threshold = _loose_latency_threshold(app, plat)
        scalar, bulk, t_s, t_b = _run_both(
            anneal_minimize_fp, app, plat, threshold, 2,
            bulk_backend="jit",
        )
        assert t_s == t_b
        if scalar is not None:
            _assert_identical(scalar, bulk)

    @pytest.mark.parametrize("kind", KINDS)
    def test_local_search_trajectories_identical(self, kind):
        app, plat = make_instance(kind, n=6, m=5, seed=4)
        threshold = _loose_latency_threshold(app, plat)
        scalar, bulk, t_s, t_b = _run_both(
            local_search_minimize_fp, app, plat, threshold, 4,
            bulk_backend="jit", restarts=3, max_steps=30,
        )
        assert t_s == t_b
        if scalar is not None:
            _assert_identical(scalar, bulk)

    def test_wide_platform_fallback_shapes(self):
        plat = _wide_platform()
        app, _ = make_instance("comm-homogeneous", n=6, m=4, seed=1)
        threshold = _loose_latency_threshold(app, plat)
        scalar, bulk, t_s, t_b = _run_both(
            local_search_minimize_fp, app, plat, threshold, 0,
            bulk_backend="jit", restarts=2, max_steps=12,
        )
        assert t_s == t_b and t_s
        _assert_identical(scalar, bulk)

    def test_greedy_and_single_interval_winners_identical(self):
        app, plat = make_instance("fully-heterogeneous", n=5, m=4, seed=3)
        threshold = _loose_latency_threshold(app, plat)
        for fn in (greedy_minimize_fp, single_interval_minimize_fp):
            scalar = fn(app, plat, threshold, use_bulk=False)
            jit = fn(
                app, plat, threshold, use_bulk=True, bulk_backend="jit"
            )
            _assert_identical(scalar, jit)
