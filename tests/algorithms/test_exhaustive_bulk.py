"""The vectorized exhaustive path must match the scalar path exactly.

The bulk solvers select on vectorized objectives but re-evaluate the
winners through the scalar metrics, so mapping, latency and FP of every
result — threshold queries, one-pass sweeps and Pareto fronts — must be
*equal* (not just close) to the scalar solvers' on these instances.
"""

import pytest

from repro.algorithms.bicriteria import (
    branch_and_bound_minimize_fp,
    branch_and_bound_minimize_latency,
    exhaustive_minimize_fp,
    exhaustive_minimize_latency,
    exhaustive_pareto_front,
    exhaustive_sweep_min_fp,
)
from repro.analysis.frontier import latency_grid, sweep_frontier
from repro.core import IntervalMapping, latency
from repro.exceptions import InfeasibleProblemError, SolverError

from tests.helpers import make_instance

pytest.importorskip("numpy", exc_type=ImportError)

KINDS = ["comm-homogeneous", "fully-heterogeneous"]


def _mid_threshold(app, plat):
    return 1.5 * latency(
        IntervalMapping.single_interval(
            app.num_stages, {plat.fastest().index}
        ),
        app,
        plat,
    )


def assert_same_result(a, b):
    assert a.mapping == b.mapping
    assert a.latency == b.latency
    assert a.failure_probability == b.failure_probability
    assert a.optimal == b.optimal
    assert a.extras["explored"] == b.extras["explored"]


class TestThresholdSolvers:
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("seed", range(4))
    def test_minimize_fp_bulk_equals_scalar(self, kind, seed):
        app, plat = make_instance(kind, n=5, m=4, seed=seed)
        threshold = _mid_threshold(app, plat)
        bulk = exhaustive_minimize_fp(app, plat, threshold, use_bulk=True)
        scalar = exhaustive_minimize_fp(
            app, plat, threshold, use_bulk=False
        )
        assert_same_result(bulk, scalar)
        assert bulk.extras["bulk"] is True

    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("seed", range(4))
    def test_minimize_latency_bulk_equals_scalar(self, kind, seed):
        app, plat = make_instance(kind, n=5, m=4, seed=seed)
        bulk = exhaustive_minimize_latency(app, plat, 0.5, use_bulk=True)
        scalar = exhaustive_minimize_latency(
            app, plat, 0.5, use_bulk=False
        )
        assert_same_result(bulk, scalar)

    def test_infeasible_raised_on_both_paths(self):
        app, plat = make_instance("comm-homogeneous", n=4, m=3, seed=0)
        for use_bulk in (True, False):
            with pytest.raises(InfeasibleProblemError):
                exhaustive_minimize_fp(
                    app, plat, 1e-12, use_bulk=use_bulk
                )

    def test_search_cap_enforced_on_bulk_path(self):
        app, plat = make_instance("comm-homogeneous", n=6, m=4, seed=0)
        with pytest.raises(SolverError, match="cap"):
            exhaustive_minimize_fp(
                app, plat, 100.0, use_bulk=True, search_cap=10
            )


class TestParetoFront:
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("seed", range(3))
    def test_front_bulk_equals_scalar(self, kind, seed):
        app, plat = make_instance(kind, n=5, m=4, seed=seed)
        bulk = exhaustive_pareto_front(app, plat, use_bulk=True)
        scalar = exhaustive_pareto_front(app, plat, use_bulk=False)
        assert [
            (p.latency, p.failure_probability, p.payload) for p in bulk
        ] == [
            (p.latency, p.failure_probability, p.payload) for p in scalar
        ]

    def test_front_reference_instances(self, fig34, fig5):
        for inst in (fig34, fig5):
            app, plat = inst.application, inst.platform
            bulk = exhaustive_pareto_front(app, plat, use_bulk=True)
            scalar = exhaustive_pareto_front(app, plat, use_bulk=False)
            assert [
                (p.latency, p.failure_probability) for p in bulk
            ] == [(p.latency, p.failure_probability) for p in scalar]

    def test_small_block_size_changes_nothing(self):
        app, plat = make_instance("comm-homogeneous", n=5, m=4, seed=9)
        tiny = exhaustive_pareto_front(app, plat, use_bulk=True, block_size=7)
        big = exhaustive_pareto_front(
            app, plat, use_bulk=True, block_size=100_000
        )
        assert [(p.latency, p.failure_probability) for p in tiny] == [
            (p.latency, p.failure_probability) for p in big
        ]


class TestOnePassSweep:
    @pytest.mark.parametrize("kind", KINDS)
    def test_sweep_equals_per_threshold_scalar(self, kind):
        app, plat = make_instance(kind, n=5, m=4, seed=2)
        top = _mid_threshold(app, plat)
        thresholds = [1e-9, 0.25 * top, 0.5 * top, top]
        swept = exhaustive_sweep_min_fp(app, plat, thresholds)
        assert len(swept) == len(thresholds)
        for threshold, result in zip(thresholds, swept):
            try:
                reference = exhaustive_minimize_fp(
                    app, plat, threshold, use_bulk=False
                )
            except InfeasibleProblemError:
                assert result is None
                continue
            assert result is not None
            assert_same_result(result, reference)

    def test_empty_threshold_list(self):
        app, plat = make_instance("comm-homogeneous", n=3, m=3, seed=0)
        assert exhaustive_sweep_min_fp(app, plat, []) == []

    def test_scalar_fallback_matches_bulk(self):
        app, plat = make_instance("comm-homogeneous", n=4, m=3, seed=5)
        thresholds = latency_grid(app, plat, num_points=5)
        bulk = exhaustive_sweep_min_fp(
            app, plat, thresholds, use_bulk=True
        )
        scalar = exhaustive_sweep_min_fp(
            app, plat, thresholds, use_bulk=False
        )
        assert len(bulk) == len(scalar)
        for b, s in zip(bulk, scalar):
            if s is None:
                assert b is None
            else:
                assert b.mapping == s.mapping
                assert b.latency == s.latency
                assert b.failure_probability == s.failure_probability


class TestFrontierFastPath:
    def test_sweep_frontier_fast_path_matches_engine_path(self):
        app, plat = make_instance("comm-homogeneous", n=4, m=4, seed=3)
        thresholds = latency_grid(app, plat, num_points=6)
        # name + no store/workers triggers the one-pass fast path;
        # workers=1 with an explicit store goes through the engine
        fast = sweep_frontier(
            app, plat, "exhaustive-min-fp", thresholds=thresholds
        )
        from repro.engine import MemoryStore

        engine = sweep_frontier(
            app,
            plat,
            "exhaustive-min-fp",
            thresholds=thresholds,
            store=MemoryStore(),
        )
        assert [(p.latency, p.failure_probability) for p in fast] == [
            (p.latency, p.failure_probability) for p in engine
        ]

    def test_callable_triggers_fast_path_too(self):
        app, plat = make_instance("comm-homogeneous", n=4, m=4, seed=4)
        thresholds = latency_grid(app, plat, num_points=5)
        via_callable = sweep_frontier(
            app, plat, exhaustive_minimize_fp, thresholds=thresholds
        )
        serial = sweep_frontier(
            app,
            plat,
            lambda a, p, t: exhaustive_minimize_fp(a, p, t),
            thresholds=thresholds,
        )
        assert [
            (p.latency, p.failure_probability) for p in via_callable
        ] == [(p.latency, p.failure_probability) for p in serial]


class TestBranchAndBoundTables:
    """The numpy bounding tables must not change the search at all."""

    @pytest.mark.parametrize("seed", range(4))
    def test_min_fp_bit_identical(self, seed):
        app, plat = make_instance("comm-homogeneous", n=5, m=6, seed=seed)
        threshold = _mid_threshold(app, plat)
        fast = branch_and_bound_minimize_fp(app, plat, threshold)
        slow = branch_and_bound_minimize_fp(
            app, plat, threshold, use_tables=False
        )
        assert_same_result(fast, slow)

    @pytest.mark.parametrize("seed", range(4))
    def test_min_latency_bit_identical(self, seed):
        app, plat = make_instance("comm-homogeneous", n=5, m=6, seed=seed)
        fast = branch_and_bound_minimize_latency(app, plat, 0.4)
        slow = branch_and_bound_minimize_latency(
            app, plat, 0.4, use_tables=False
        )
        assert_same_result(fast, slow)

    def test_figure5_bit_identical(self, fig5):
        fast = branch_and_bound_minimize_fp(
            fig5.application, fig5.platform, fig5.latency_threshold
        )
        slow = branch_and_bound_minimize_fp(
            fig5.application,
            fig5.platform,
            fig5.latency_threshold,
            use_tables=False,
        )
        assert_same_result(fast, slow)
