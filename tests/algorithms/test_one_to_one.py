"""Tests for the one-to-one latency solvers (Theorem 3 context)."""

import pytest

from repro.algorithms.mono import (
    minimize_latency_one_to_one_exact,
    minimize_latency_one_to_one_greedy,
    one_to_one_local_search,
)
from repro.core import IntervalMapping, enumerate_one_to_one_mappings, latency
from repro.exceptions import SolverError
from repro.workloads.synthetic import (
    random_application,
    random_fully_heterogeneous,
)


def brute_force_optimum(app, plat):
    return min(
        latency(m, app, plat)
        for m in enumerate_one_to_one_mappings(app.num_stages, plat.size)
    )


class TestHeldKarpExact:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_bruteforce(self, seed):
        app = random_application(4, seed=seed)
        plat = random_fully_heterogeneous(5, seed=seed + 100)
        result = minimize_latency_one_to_one_exact(app, plat)
        assert result.mapping.is_one_to_one
        assert result.latency == pytest.approx(
            brute_force_optimum(app, plat), rel=1e-12
        )

    def test_n_equals_m(self):
        app = random_application(5, seed=7)
        plat = random_fully_heterogeneous(5, seed=17)
        result = minimize_latency_one_to_one_exact(app, plat)
        assert result.mapping.used_processors == frozenset(range(1, 6))
        assert result.latency == pytest.approx(
            brute_force_optimum(app, plat), rel=1e-12
        )

    def test_single_stage(self):
        app = random_application(1, seed=3)
        plat = random_fully_heterogeneous(4, seed=13)
        result = minimize_latency_one_to_one_exact(app, plat)
        assert result.latency == pytest.approx(
            brute_force_optimum(app, plat), rel=1e-12
        )

    def test_rejects_n_gt_m(self):
        app = random_application(4, seed=1)
        plat = random_fully_heterogeneous(3, seed=2)
        with pytest.raises(SolverError):
            minimize_latency_one_to_one_exact(app, plat)

    def test_rejects_huge_m(self):
        app = random_application(2, seed=1)
        plat = random_fully_heterogeneous(19, seed=2)
        with pytest.raises(SolverError):
            minimize_latency_one_to_one_exact(app, plat)

    def test_latency_recomputed_through_metric(self):
        app = random_application(3, seed=21)
        plat = random_fully_heterogeneous(4, seed=22)
        result = minimize_latency_one_to_one_exact(app, plat)
        assert result.latency == pytest.approx(
            latency(result.mapping, app, plat), rel=1e-12
        )


class TestGreedyAndLocalSearch:
    @pytest.mark.parametrize("seed", range(6))
    def test_greedy_within_search_space(self, seed):
        app = random_application(3, seed=seed)
        plat = random_fully_heterogeneous(5, seed=seed + 50)
        result = minimize_latency_one_to_one_greedy(app, plat)
        assert result.mapping.is_one_to_one
        assert result.latency >= brute_force_optimum(app, plat) - 1e-9

    @pytest.mark.parametrize("seed", range(6))
    def test_local_search_never_worse_than_greedy(self, seed):
        app = random_application(3, seed=seed)
        plat = random_fully_heterogeneous(5, seed=seed + 50)
        greedy = minimize_latency_one_to_one_greedy(app, plat)
        improved = one_to_one_local_search(app, plat, seed=seed)
        assert improved.latency <= greedy.latency + 1e-9

    def test_local_search_from_explicit_start(self):
        app = random_application(3, seed=9)
        plat = random_fully_heterogeneous(4, seed=19)
        result = one_to_one_local_search(app, plat, start=[1, 2, 3], seed=0)
        start_latency = latency(
            IntervalMapping.one_to_one([1, 2, 3]), app, plat
        )
        assert result.latency <= start_latency + 1e-9

    def test_local_search_rejects_bad_start(self):
        app = random_application(3, seed=9)
        plat = random_fully_heterogeneous(4, seed=19)
        with pytest.raises(SolverError):
            one_to_one_local_search(app, plat, start=[1, 1, 2])
