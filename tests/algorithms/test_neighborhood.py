"""Tests for the local-search neighbourhood over interval mappings."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.heuristics import (
    neighbors,
    random_mapping,
    random_neighbor,
)
from repro.core import IntervalMapping

from tests.strategies import interval_mappings


class TestNeighbors:
    def test_all_neighbors_valid(self):
        mapping = IntervalMapping([(1, 2), (3, 4)], [{1, 2}, {3}])
        for nb in neighbors(mapping, num_processors=5):
            assert isinstance(nb, IntervalMapping)
            assert nb.num_stages == 4

    def test_merge_reaches_single_interval(self):
        mapping = IntervalMapping([(1, 1), (2, 2)], [{1}, {2}])
        merged = [
            nb for nb in neighbors(mapping, 2) if nb.is_single_interval
        ]
        assert merged
        assert merged[0].allocations[0] == frozenset({1, 2})

    def test_split_present_for_multistage_interval(self):
        mapping = IntervalMapping.single_interval(3, {1, 2})
        splits = [
            nb for nb in neighbors(mapping, 4) if nb.num_intervals == 2
        ]
        assert splits

    def test_add_and_drop_replicas(self):
        mapping = IntervalMapping.single_interval(2, {1, 2})
        sizes = {
            len(nb.allocations[0])
            for nb in neighbors(mapping, 3)
            if nb.is_single_interval
        }
        assert 1 in sizes  # drop
        assert 3 in sizes  # add

    def test_shift_moves_boundary(self):
        mapping = IntervalMapping([(1, 2), (3, 3)], [{1}, {2}])
        boundaries = {
            tuple(iv.end for iv in nb.intervals)
            for nb in neighbors(mapping, 2)
            if nb.num_intervals == 2
        }
        assert (1, 3) in boundaries

    @given(
        interval_mappings(num_stages=4, num_processors=5),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=100, deadline=None)
    def test_random_neighbor_always_valid(self, mapping, seed):
        rng = random.Random(seed)
        nb = random_neighbor(mapping, 5, rng)
        assert isinstance(nb, IntervalMapping)
        assert nb.num_stages == mapping.num_stages
        assert all(1 <= u <= 5 for u in nb.used_processors)

    def test_single_stage_single_processor_fixed_point(self):
        mapping = IntervalMapping.single_interval(1, {1})
        rng = random.Random(0)
        nb = random_neighbor(mapping, 1, rng)
        assert nb == mapping


class TestRandomMapping:
    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=100, deadline=None)
    def test_random_mapping_valid(self, seed):
        rng = random.Random(seed)
        mapping = random_mapping(4, 6, rng)
        assert mapping.num_stages == 4
        assert all(1 <= u <= 6 for u in mapping.used_processors)

    def test_deterministic_given_seed(self):
        a = random_mapping(5, 5, random.Random(99))
        b = random_mapping(5, 5, random.Random(99))
        assert a == b
