"""Branch-and-bound exact solver: equivalence with plain enumeration."""

import pytest

from repro.algorithms.bicriteria import (
    branch_and_bound_minimize_fp,
    branch_and_bound_minimize_latency,
    exhaustive_minimize_fp,
    exhaustive_minimize_latency,
)
from repro.core import IntervalMapping, latency
from repro.exceptions import InfeasibleProblemError, SolverError
from repro.workloads.reference import figure5_instance

from tests.helpers import make_instance


def thresholds_for(app, plat):
    base = latency(
        IntervalMapping.single_interval(app.num_stages, {plat.fastest().index}),
        app,
        plat,
    )
    return [base, base * 1.5, base * 2.5, base * 5.0]


class TestMinFP:
    @pytest.mark.parametrize(
        "kind",
        ["fully-homogeneous", "comm-homogeneous", "comm-homogeneous-failhom"],
    )
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_exhaustive(self, kind, seed):
        app, plat = make_instance(kind, n=3, m=4, seed=seed)
        for threshold in thresholds_for(app, plat):
            try:
                bnb = branch_and_bound_minimize_fp(app, plat, threshold)
            except InfeasibleProblemError:
                with pytest.raises(InfeasibleProblemError):
                    exhaustive_minimize_fp(app, plat, threshold)
                continue
            exact = exhaustive_minimize_fp(app, plat, threshold)
            assert bnb.failure_probability == pytest.approx(
                exact.failure_probability, abs=1e-12
            )
            assert bnb.latency <= threshold * (1 + 1e-9)

    def test_figure5_two_interval_optimum(self):
        inst = figure5_instance()
        result = branch_and_bound_minimize_fp(
            inst.application, inst.platform, inst.latency_threshold
        )
        assert result.failure_probability == pytest.approx(
            inst.claimed_two_interval_fp, rel=1e-12
        )
        assert result.mapping.num_intervals == 2

    def test_prunes_versus_exhaustive(self):
        """The point of the bounds: far fewer nodes than full enumeration."""
        inst = figure5_instance()
        bnb = branch_and_bound_minimize_fp(
            inst.application, inst.platform, inst.latency_threshold
        )
        exact = exhaustive_minimize_fp(
            inst.application, inst.platform, inst.latency_threshold
        )
        assert bnb.extras["explored"] < exact.extras["explored"] / 10

    def test_infeasible(self):
        inst = figure5_instance()
        with pytest.raises(InfeasibleProblemError):
            branch_and_bound_minimize_fp(
                inst.application, inst.platform, 0.01
            )

    def test_rejects_heterogeneous_links(self, het_platform, small_app):
        with pytest.raises(SolverError):
            branch_and_bound_minimize_fp(small_app, het_platform, 100.0)


class TestMinLatency:
    @pytest.mark.parametrize(
        "kind", ["comm-homogeneous", "comm-homogeneous-failhom"]
    )
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_exhaustive(self, kind, seed):
        app, plat = make_instance(kind, n=3, m=4, seed=seed)
        for fp_threshold in (1.0, 0.5, 0.2, 0.05):
            try:
                bnb = branch_and_bound_minimize_latency(
                    app, plat, fp_threshold
                )
            except InfeasibleProblemError:
                with pytest.raises(InfeasibleProblemError):
                    exhaustive_minimize_latency(app, plat, fp_threshold)
                continue
            exact = exhaustive_minimize_latency(app, plat, fp_threshold)
            assert bnb.latency == pytest.approx(exact.latency, rel=1e-9)
            assert bnb.failure_probability <= fp_threshold * (1 + 1e-9)

    def test_trivial_threshold_is_theorem2(self):
        app, plat = make_instance("comm-homogeneous", n=3, m=4, seed=9)
        result = branch_and_bound_minimize_latency(app, plat, 1.0)
        from repro.algorithms.mono import minimize_latency_comm_homogeneous

        assert result.latency == pytest.approx(
            minimize_latency_comm_homogeneous(app, plat).latency, rel=1e-12
        )

    def test_infeasible(self):
        app, plat = make_instance("comm-homogeneous", n=2, m=3, seed=2)
        tiny = 1e-12
        try:
            branch_and_bound_minimize_latency(app, plat, tiny)
        except InfeasibleProblemError:
            with pytest.raises(InfeasibleProblemError):
                exhaustive_minimize_latency(app, plat, tiny)
