"""Tests for the mono-criterion solvers (Theorems 1, 2, 4)."""

import pytest

from repro.algorithms.bicriteria import enumerate_evaluations
from repro.algorithms.mono import (
    minimize_failure_probability,
    minimize_latency_comm_homogeneous,
    minimize_latency_general,
    minimize_latency_general_bruteforce,
)
from repro.core import Platform, failure_probability, latency
from repro.exceptions import SolverError
from repro.workloads.synthetic import random_application

from tests.helpers import make_instance


class TestTheorem1MinFP:
    def test_uses_every_processor(self, small_app, comm_hom_platform):
        result = minimize_failure_probability(small_app, comm_hom_platform)
        assert result.mapping.is_single_interval
        assert result.mapping.used_processors == frozenset({1, 2, 3, 4})
        assert result.optimal

    def test_fp_is_product_of_all(self, small_app):
        plat = Platform.fully_homogeneous(
            3, failure_probabilities=[0.5, 0.2, 0.1]
        )
        result = minimize_failure_probability(small_app, plat)
        assert result.failure_probability == pytest.approx(0.5 * 0.2 * 0.1)

    @pytest.mark.parametrize(
        "kind",
        [
            "fully-homogeneous",
            "fully-homogeneous-failhet",
            "comm-homogeneous",
            "fully-heterogeneous",
        ],
    )
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_exhaustive_on_all_platform_classes(self, kind, seed):
        """Theorem 1's claim: optimal on *every* platform type."""
        app, plat = make_instance(kind, n=3, m=4, seed=seed)
        result = minimize_failure_probability(app, plat)
        best = min(
            ev.failure_probability
            for ev in enumerate_evaluations(app, plat)
        )
        assert result.failure_probability == pytest.approx(best, abs=1e-12)


class TestTheorem2MinLatency:
    def test_fastest_single_processor(self, small_app, comm_hom_platform):
        result = minimize_latency_comm_homogeneous(
            small_app, comm_hom_platform
        )
        assert result.mapping.is_single_interval
        assert result.mapping.used_processors == frozenset({1})  # speed 3.0
        assert not result.mapping.uses_replication

    @pytest.mark.parametrize(
        "kind", ["fully-homogeneous", "comm-homogeneous"]
    )
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_exhaustive(self, kind, seed):
        app, plat = make_instance(kind, n=3, m=4, seed=seed)
        result = minimize_latency_comm_homogeneous(app, plat)
        best = min(ev.latency for ev in enumerate_evaluations(app, plat))
        assert result.latency == pytest.approx(best, rel=1e-12)

    def test_rejects_heterogeneous_platform(self, small_app, het_platform):
        with pytest.raises(SolverError):
            minimize_latency_comm_homogeneous(small_app, het_platform)


class TestTheorem4GeneralMapping:
    def test_figure34_split(self, fig34):
        result = minimize_latency_general(fig34.application, fig34.platform)
        assert result.latency == pytest.approx(7.0)
        assert result.extras["interval_compatible"]

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_bruteforce_fully_heterogeneous(self, seed):
        app, plat = make_instance("fully-heterogeneous", n=4, m=4, seed=seed)
        dp = minimize_latency_general(app, plat)
        brute = minimize_latency_general_bruteforce(app, plat)
        assert dp.latency == pytest.approx(brute.latency, rel=1e-12)

    @pytest.mark.parametrize("seed", range(4))
    def test_reduces_to_theorem2_on_comm_hom(self, seed):
        """On uniform links the optimal general mapping is one processor."""
        app, plat = make_instance("comm-homogeneous", n=4, m=4, seed=seed)
        dp = minimize_latency_general(app, plat)
        thm2 = minimize_latency_comm_homogeneous(app, plat)
        assert dp.latency == pytest.approx(thm2.latency, rel=1e-12)

    def test_dp_value_matches_metric(self, het_platform):
        app = random_application(4, seed=99)
        result = minimize_latency_general(app, het_platform)
        assert result.extras["dp_value"] == pytest.approx(
            result.latency, rel=1e-9
        )

    def test_networkx_cross_check(self, het_platform):
        """The layered-graph export agrees with an independent SP solver."""
        import networkx as nx

        from repro.algorithms.mono import layered_graph_edges

        app = random_application(4, seed=123)
        graph = nx.DiGraph()
        for src, dst, weight in layered_graph_edges(app, het_platform):
            graph.add_edge(src, dst, weight=weight)
        nx_length = nx.shortest_path_length(
            graph, ("in",), ("out",), weight="weight"
        )
        dp = minimize_latency_general(app, het_platform)
        assert dp.latency == pytest.approx(nx_length, rel=1e-9)

    def test_graph_size_matches_paper(self, het_platform):
        """Paper: n*m + 2 vertices and (n-1)m^2 + 2m edges."""
        from repro.algorithms.mono import layered_graph_edges

        app = random_application(3, seed=5)
        n, m = 3, het_platform.size
        edges = list(layered_graph_edges(app, het_platform))
        assert len(edges) == (n - 1) * m * m + 2 * m
        vertices = {e[0] for e in edges} | {e[1] for e in edges}
        assert len(vertices) == n * m + 2

    def test_bruteforce_cap(self, het_platform):
        app = random_application(12, seed=1)
        with pytest.raises(SolverError):
            minimize_latency_general_bruteforce(
                app, het_platform, max_search_space=100
            )
