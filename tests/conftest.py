"""Shared fixtures: the paper's reference instances and random factories."""

from __future__ import annotations

import pytest

from repro.workloads.reference import figure5_instance, figure34_instance
from repro.workloads.synthetic import random_fully_heterogeneous


@pytest.fixture
def fig34():
    """The paper's Figure 3/4 example (Fully Heterogeneous split case)."""
    return figure34_instance()


@pytest.fixture
def fig5():
    """The paper's Figure 5 example (Comm. Homogeneous, Failure Het.)."""
    return figure5_instance()


@pytest.fixture
def small_app():
    """A fixed three-stage application with mixed costs."""
    from repro.core import PipelineApplication

    return PipelineApplication(works=(4.0, 6.0, 2.0), volumes=(8.0, 4.0, 4.0, 2.0))


@pytest.fixture
def hom_platform():
    """A fixed Fully Homogeneous platform (6 processors)."""
    from repro.core import Platform

    return Platform.fully_homogeneous(
        6, speed=2.0, bandwidth=4.0, failure_probability=0.3
    )


@pytest.fixture
def comm_hom_platform():
    """A fixed Communication Homogeneous / Failure Homogeneous platform."""
    from repro.core import Platform

    return Platform.communication_homogeneous(
        [3.0, 2.0, 1.0, 2.5], bandwidth=4.0, failure_probabilities=[0.4] * 4
    )


@pytest.fixture
def het_platform():
    """A fixed small Fully Heterogeneous platform (4 processors)."""
    return random_fully_heterogeneous(4, seed=1234)


# Re-exported so legacy ``from tests.conftest import make_instance`` call
# sites (the benchmark harness) keep working; new code should import from
# :mod:`tests.helpers`.
from tests.helpers import make_instance  # noqa: E402,F401
