"""The real daemon: ``repro-pipeline serve`` in a subprocess.

Covers what the in-process tests cannot: the CLI entry points, the
``--preload`` hook, and POSIX signal handling — SIGTERM mid-request
must finish the in-flight work, reject new submissions with a
retriable error, and exit 0.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service import ServiceClient, ServiceError

from tests.engine.synthetic import invocations

REPO_ROOT = Path(__file__).resolve().parents[2]


def start_daemon(tmp_path, *extra_args, env_extra=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), str(REPO_ROOT)]
    )
    env.update(env_extra or {})
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--socket",
            str(tmp_path / "svc.sock"),
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    assert process.stdout is not None
    status = process.stdout.readline()
    assert status, "daemon exited before reporting readiness"
    assert json.loads(status)["event"] == "serving"
    return process


def wait_for(predicate, timeout=15.0, message="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            pytest.fail(f"timed out waiting for {message}")
        time.sleep(0.02)


@pytest.fixture
def plan_file(tmp_path):
    path = tmp_path / "plan.json"
    path.write_text(
        json.dumps(
            {
                "schema": 1,
                "instances": [
                    {
                        "scenario": "edge-hub-cloud",
                        "seed": 3,
                        "params": {"stages": 4},
                    }
                ],
                "solvers": ["greedy-min-fp"],
                "thresholds": [40.0, 60.0, 90.0],
            }
        )
    )
    return path


def submit(tmp_path, *args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "submit",
            "--socket",
            str(tmp_path / "svc.sock"),
            *args,
        ],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        timeout=120,
    )


class TestDaemon:
    def test_serve_submit_warm_resubmit_and_drain(
        self, tmp_path, plan_file
    ):
        process = start_daemon(
            tmp_path, "--store", str(tmp_path / "results.sqlite")
        )
        try:
            cold = submit(
                tmp_path, "--plan", str(plan_file), "--seed", "0"
            )
            assert cold.returncode == 0, cold.stdout + cold.stderr
            events = [
                json.loads(line)
                for line in cold.stdout.splitlines()
                if line
            ]
            assert events[-1]["event"] == "done"
            assert events[-1]["solver_invocations"] == 3

            warm = submit(
                tmp_path, "--plan", str(plan_file), "--seed", "0"
            )
            assert warm.returncode == 0
            done = json.loads(warm.stdout.splitlines()[-1])
            assert done["solver_invocations"] == 0
            assert done["cached"] == 3

            stats = submit(tmp_path, "--stats")
            assert stats.returncode == 0
            snapshot = json.loads(stats.stdout)
            assert snapshot["store"]["hits"] == 3
            assert snapshot["requests"]["completed"] == 2

            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 0
            tail = process.stdout.read()
            assert '"drained"' in tail
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)

    def test_sigterm_mid_request_drains_gracefully(self, tmp_path):
        gate = tmp_path / "gate"
        counter = tmp_path / "counter"
        process = start_daemon(
            tmp_path,
            "--workers",
            "1",
            "--preload",
            "tests.service.preload_gate",
            env_extra={
                "REPRO_TEST_GATE": str(gate),
                "REPRO_TEST_COUNTER": str(counter),
            },
        )
        client = ServiceClient(
            str(tmp_path / "svc.sock"), timeout=60.0
        )
        try:
            import threading

            in_flight_events: list[dict] = []

            def run_in_flight():
                in_flight_events.extend(
                    client.submit(
                        "solve",
                        solver="preload-gate",
                        instance={
                            "scenario": "edge-hub-cloud",
                            "seed": 3,
                            "params": {"stages": 4},
                        },
                        threshold=50.0,
                    )
                )

            runner = threading.Thread(target=run_in_flight)
            runner.start()
            wait_for(
                lambda: invocations(counter) > 0,
                message="the in-flight request to start solving",
            )

            process.send_signal(signal.SIGTERM)
            wait_for(
                lambda: client.ping().get("draining"),
                message="the daemon to acknowledge the drain",
            )

            # new work is rejected with a *retriable* error
            with pytest.raises(ServiceError) as err:
                client.solve(
                    "greedy-min-fp",
                    {
                        "scenario": "edge-hub-cloud",
                        "seed": 3,
                        "params": {"stages": 4},
                    },
                    threshold=60.0,
                )
            assert err.value.code == "draining"
            assert err.value.retriable

            # release the gate: the in-flight request completes fully
            gate.touch()
            runner.join(30)
            assert not runner.is_alive()
            assert in_flight_events[-1]["event"] == "done"
            assert in_flight_events[-1]["ok"] == 1

            assert process.wait(timeout=30) == 0
            assert '"drained"' in process.stdout.read()
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)

    def test_submit_against_dead_service_is_retriable_exit(
        self, tmp_path, plan_file
    ):
        result = submit(tmp_path, "--plan", str(plan_file))
        assert result.returncode == 75  # EX_TEMPFAIL: retry elsewhere

    def test_submit_ping_round_trip(self, tmp_path):
        process = start_daemon(tmp_path)
        try:
            result = submit(tmp_path, "--ping")
            assert result.returncode == 0
            assert json.loads(result.stdout)["event"] == "pong"
        finally:
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=30)
            if process.poll() is None:
                process.kill()
