"""``--preload`` module for the daemon SIGTERM test.

Importing this inside the *served* process registers ``preload-gate``,
a min-FP solver that stalls until the file named by the
``REPRO_TEST_GATE`` environment variable exists, counting invocations
in ``REPRO_TEST_COUNTER`` — giving the test a deterministic handle on
"a request is in flight right now" across the process boundary.
"""

from __future__ import annotations

import os

from repro.api import Objective, SolverSpec
from repro.engine import register

from tests.engine.synthetic import gated_min_fp


def _gated(application, platform, threshold):
    return gated_min_fp(
        application,
        platform,
        threshold,
        gate=os.environ["REPRO_TEST_GATE"],
        counter_file=os.environ["REPRO_TEST_COUNTER"],
    )


register(
    SolverSpec(
        name="preload-gate",
        func=_gated,
        objective=Objective.MIN_FP,
        exact=False,
        needs_threshold=True,
    )
)
