"""Wire protocol: request validation, events, NDJSON framing."""

import json

import pytest

from repro.engine.batch import BatchOutcome, BatchTask
from repro.engine.policy import BatchPolicy, ErrorKind
from repro.engine.sweeps import SPEC_SCHEMA_VERSION
from repro.service.protocol import (
    PROTOCOL_VERSION,
    TERMINAL_EVENTS,
    ServiceError,
    decode_line,
    done_event,
    encode_event,
    error_event,
    iter_ndjson,
    outcome_event,
    policy_from_request,
    policy_to_wire,
    validate_request,
)

from tests.helpers import make_instance


def solve_request(**overrides):
    base = {
        "schema": PROTOCOL_VERSION,
        "kind": "solve",
        "solver": "greedy-min-fp",
        "instance": {"scenario": "edge-hub-cloud", "seed": 1},
        "threshold": 30.0,
    }
    base.update(overrides)
    return base


def sweep_request(**overrides):
    base = {
        "schema": PROTOCOL_VERSION,
        "kind": "sweep",
        "plan": {
            "instances": [{"scenario": "edge-hub-cloud", "seed": 1}],
            "solvers": ["greedy-min-fp"],
            "thresholds": [30.0],
        },
    }
    base.update(overrides)
    return base


class TestValidateRequest:
    def test_version_matches_spec_schema(self):
        assert PROTOCOL_VERSION == SPEC_SCHEMA_VERSION

    def test_accepts_valid_solve(self):
        req = validate_request(solve_request())
        assert req["kind"] == "solve"
        assert req["priority"] == 0  # defaulted

    def test_accepts_valid_sweep(self):
        assert validate_request(sweep_request())["kind"] == "sweep"

    @pytest.mark.parametrize("kind", ["ping", "stats", "drain"])
    def test_control_kinds_need_no_schema(self, kind):
        assert validate_request({"kind": kind})["kind"] == kind

    def test_rejects_non_object(self):
        with pytest.raises(ServiceError, match="JSON object"):
            validate_request([1, 2])

    def test_rejects_unknown_kind(self):
        with pytest.raises(ServiceError, match="'frobnicate'"):
            validate_request({"kind": "frobnicate"})

    def test_rejects_unknown_key_by_name(self):
        with pytest.raises(ServiceError, match="'bogus'"):
            validate_request(solve_request(bogus=1))
        with pytest.raises(ServiceError) as err:
            validate_request(sweep_request(warmstart="chain"))
        assert "'warmstart'" in str(err.value)
        assert err.value.code == "bad-request"
        assert not err.value.retriable

    def test_work_requests_require_schema(self):
        request = solve_request()
        del request["schema"]
        with pytest.raises(ServiceError, match="schema"):
            validate_request(request)

    @pytest.mark.parametrize("schema", [True, "1", 1.5])
    def test_rejects_non_integer_schema(self, schema):
        with pytest.raises(ServiceError, match="integer"):
            validate_request(solve_request(schema=schema))

    @pytest.mark.parametrize("schema", [0, PROTOCOL_VERSION + 1, -3])
    def test_rejects_out_of_range_schema(self, schema):
        with pytest.raises(ServiceError) as err:
            validate_request(solve_request(schema=schema))
        assert err.value.code == "unsupported-schema"

    def test_rejects_bad_id(self):
        with pytest.raises(ServiceError, match="'id'"):
            validate_request(solve_request(id=7))

    @pytest.mark.parametrize("priority", [True, 1.5, "high"])
    def test_rejects_bad_priority(self, priority):
        with pytest.raises(ServiceError, match="priority"):
            validate_request(solve_request(priority=priority))

    def test_rejects_unknown_policy_key(self):
        with pytest.raises(ServiceError, match="'retrys'"):
            validate_request(solve_request(policy={"retrys": 3}))

    def test_solve_requires_solver_and_instance(self):
        request = solve_request()
        del request["solver"]
        with pytest.raises(ServiceError, match="solver"):
            validate_request(request)
        with pytest.raises(ServiceError, match="instance"):
            validate_request(solve_request(instance="nope"))

    def test_rejects_bad_threshold(self):
        with pytest.raises(ServiceError, match="threshold"):
            validate_request(solve_request(threshold=True))

    def test_sweep_requires_plan_object(self):
        with pytest.raises(ServiceError, match="plan"):
            validate_request(sweep_request(plan="plan.json"))

    def test_rejects_bad_seed(self):
        with pytest.raises(ServiceError, match="seed"):
            validate_request(sweep_request(seed="0"))


class TestPolicy:
    def test_absent_policy_is_none(self):
        assert policy_from_request(solve_request()) is None

    def test_builds_batch_policy(self):
        policy = policy_from_request(
            solve_request(
                policy={"retries": 2, "timeout": 5.0, "backoff": 0.1}
            )
        )
        assert policy == BatchPolicy(retries=2, timeout=5.0, backoff=0.1)

    def test_invalid_policy_values_raise_bad_request(self):
        with pytest.raises(ServiceError) as err:
            policy_from_request(solve_request(policy={"retries": -1}))
        assert err.value.code == "bad-request"

    def test_policy_to_wire_round_trip(self):
        policy = BatchPolicy(retries=2, timeout=5.0, backoff=0.1)
        wire = policy_to_wire(policy)
        assert policy_from_request({"policy": wire}) == policy

    def test_policy_to_wire_passthrough(self):
        assert policy_to_wire(None) is None
        assert policy_to_wire({"retries": 1}) == {"retries": 1}


def _make_outcome(ok=True):
    from repro.engine.registry import solve

    app, plat = make_instance("comm-homogeneous", 3, 3, seed=5)
    task = BatchTask(
        "greedy-min-fp", app, plat, threshold=50.0, tag="t"
    )
    if ok:
        result = solve("greedy-min-fp", app, plat, threshold=50.0)
        return BatchOutcome(
            index=0, solver=task.solver, tag="t", result=result,
            error=None, elapsed=0.1, task=task,
        )
    return BatchOutcome(
        index=0, solver=task.solver, tag="t", result=None,
        error="RuntimeError: boom", elapsed=0.1, task=task,
        error_kind=ErrorKind.CRASH, attempts=2,
    )


class TestEvents:
    def test_outcome_event_success(self):
        event = outcome_event("r1", _make_outcome(), instance="inst")
        assert event["event"] == "outcome"
        assert event["id"] == "r1"
        assert event["ok"] is True
        assert event["instance"] == "inst"
        assert event["threshold"] == 50.0
        assert "latency" in event and "failure_probability" in event
        assert "mapping" not in event
        assert "error" not in event

    def test_outcome_event_mapping_opt_in(self):
        event = outcome_event("r1", _make_outcome(), include_mapping=True)
        assert event["mapping"]["kind"] == "interval-mapping"

    def test_outcome_event_failure_keeps_error_kind(self):
        event = outcome_event("r1", _make_outcome(ok=False))
        assert event["ok"] is False
        assert event["error_kind"] == "crash"
        assert event["attempts"] == 2
        assert "latency" not in event

    def test_outcome_event_point_index_overrides(self):
        event = outcome_event("r1", _make_outcome(), point_index=7)
        assert event["index"] == 7

    def test_done_event_counts_invocations(self):
        event = done_event(
            "r1", total=5, ok=4, failed=1, cached=3,
            elapsed=0.5, queue_wait=0.01,
        )
        assert event["solver_invocations"] == 2
        assert event["event"] == "done"

    def test_error_event_structured(self):
        event = error_event(
            "r1",
            ServiceError("full", code="queue-full", retriable=True),
        )
        assert event == {
            "event": "error",
            "id": "r1",
            "code": "queue-full",
            "retriable": True,
            "message": "full",
        }

    def test_error_event_generic_exception(self):
        event = error_event(None, ValueError("boom"))
        assert event["code"] == "internal"
        assert event["retriable"] is False

    def test_terminal_events_cover_all_reply_kinds(self):
        assert {"done", "error", "pong", "stats", "draining"} <= (
            TERMINAL_EVENTS
        )


class TestFraming:
    def test_encode_decode_round_trip(self):
        event = {"event": "done", "id": "x", "total": 3}
        line = encode_event(event)
        assert line.endswith(b"\n")
        assert decode_line(line) == event

    def test_decode_rejects_garbage(self):
        with pytest.raises(ServiceError, match="invalid JSON"):
            decode_line(b"{nope")
        with pytest.raises(ServiceError, match="object"):
            decode_line(b"[1,2]")

    def test_iter_ndjson_reassembles_split_chunks(self):
        events = [{"i": n} for n in range(5)]
        payload = b"".join(encode_event(e) for e in events)
        # 3-byte chunks split lines mid-object
        chunks = [payload[i:i + 3] for i in range(0, len(payload), 3)]
        assert list(iter_ndjson(chunks)) == events

    def test_iter_ndjson_handles_missing_trailing_newline(self):
        raw = encode_event({"a": 1}) + json.dumps({"b": 2}).encode()
        assert list(iter_ndjson([raw])) == [{"a": 1}, {"b": 2}]
