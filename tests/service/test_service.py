"""In-process solve service: round-trips, sharing, robustness.

Everything here runs a real :class:`SolverService` (real sockets, real
worker threads) on a background loop via :class:`ServiceThread` — only
the process boundary of the daemon tests is skipped.
"""

import json
import socket
import threading
import time

import pytest

from repro.engine.store import MemoryStore, open_store
from repro.service import (
    PROTOCOL_VERSION,
    ServiceClient,
    ServiceError,
    ServiceThread,
)

from tests.engine.synthetic import (
    always_crash_min_fp,
    counting_min_fp,
    gated_min_fp,
    invocations,
    register_synthetic,
)


def instance_spec(seed=3, stages=4):
    return {
        "scenario": "edge-hub-cloud",
        "seed": seed,
        "params": {"stages": stages},
    }


def plan_spec(
    *, solver="greedy-min-fp", thresholds=(40.0, 60.0, 90.0), seeds=(3,),
    opts=None,
):
    entry = {"name": solver, "opts": dict(opts)} if opts else solver
    return {
        "schema": PROTOCOL_VERSION,
        "instances": [instance_spec(seed=s) for s in seeds],
        "solvers": [entry],
        "thresholds": list(thresholds),
    }


class TestRoundTrips:
    def test_solve_over_socket(self):
        with ServiceThread(MemoryStore()) as service:
            client = service.client()
            outcome = client.solve(
                "greedy-min-fp", instance_spec(), threshold=60.0, seed=0
            )
        assert outcome["ok"] is True
        assert outcome["solver"] == "greedy-min-fp"
        assert outcome["latency"] <= 60.0
        assert 0.0 <= outcome["failure_probability"] <= 1.0
        assert "mapping" not in outcome

    def test_solve_include_mapping(self):
        with ServiceThread() as service:
            outcome = service.client().solve(
                "greedy-min-fp",
                instance_spec(),
                threshold=60.0,
                include_mapping=True,
            )
        assert outcome["mapping"]["kind"] == "interval-mapping"

    def test_sweep_streams_accepted_outcomes_done(self):
        spec = plan_spec()
        with ServiceThread(MemoryStore()) as service:
            events = list(service.client().sweep(spec, seed=0))
        assert events[0]["event"] == "accepted"
        assert events[-1]["event"] == "done"
        outcomes = [e for e in events if e["event"] == "outcome"]
        assert len(outcomes) == 3
        assert {e["threshold"] for e in outcomes} == {40.0, 60.0, 90.0}
        assert all(
            e["instance"] == "edge-hub-cloud[seed=3]" for e in outcomes
        )
        done = events[-1]
        assert done["total"] == 3 and done["ok"] == 3
        assert done["solver_invocations"] == 3

    def test_http_transport_equivalent(self):
        spec = plan_spec()
        with ServiceThread(MemoryStore(), http=True) as service:
            http_client = service.client(http=True)
            assert http_client.ping()["event"] == "pong"
            outcomes, done = http_client.run_sweep(spec, seed=0)
            assert done["ok"] == 3
            # second submit is warm through the same shared store
            _, warm = service.client().run_sweep(spec, seed=0)
        assert warm["solver_invocations"] == 0

    def test_http_get_routes_and_404(self):
        with ServiceThread(http=True) as service:
            import http.client

            conn = http.client.HTTPConnection(
                "127.0.0.1", service.http_port, timeout=30
            )
            conn.request("GET", "/v1/ping")
            body = conn.getresponse().read()
            assert json.loads(body)["event"] == "pong"
            conn = http.client.HTTPConnection(
                "127.0.0.1", service.http_port, timeout=30
            )
            conn.request("GET", "/nope")
            response = conn.getresponse()
            assert response.status == 404
            assert json.loads(response.read())["event"] == "error"

    def test_failed_solve_is_outcome_not_error(self):
        with register_synthetic("svc-crash", always_crash_min_fp):
            with ServiceThread() as service:
                outcome = service.client().solve(
                    "svc-crash", instance_spec(), threshold=50.0
                )
        assert outcome["ok"] is False
        assert outcome["error_kind"] == "crash"
        assert "synthetic permanent crash" in outcome["error"]

    def test_request_policy_drives_retries(self):
        with register_synthetic("svc-crash", always_crash_min_fp):
            with ServiceThread() as service:
                outcome = service.client().solve(
                    "svc-crash",
                    instance_spec(),
                    threshold=50.0,
                    policy={"retries": 2},
                )
        assert outcome["attempts"] == 3

    def test_ping_stats_drain_verbs(self):
        with ServiceThread(MemoryStore()) as service:
            client = service.client()
            pong = client.ping()
            assert pong["schema"] == PROTOCOL_VERSION
            assert pong["draining"] is False
            client.solve("greedy-min-fp", instance_spec(), threshold=60.0)
            stats = client.stats()
            assert stats["requests"]["completed"] == 1
            assert stats["outcomes"]["solver_invocations"] == 1
            assert stats["store"]["writes"] == 1
            assert stats["latency"]["count"] == 1
            assert stats["latency"]["p99"] >= stats["latency"]["p50"] > 0
            assert client.drain()["event"] == "draining"


class TestProtocolErrors:
    def test_malformed_json_line(self):
        with ServiceThread() as service:
            with socket.socket(socket.AF_UNIX) as sock:
                sock.settimeout(30)
                sock.connect(service.socket_path)
                sock.sendall(b"{not json\n")
                reply = json.loads(sock.makefile("rb").readline())
        assert reply["event"] == "error"
        assert reply["code"] == "bad-request"

    def test_unknown_key_rejected_by_name(self):
        with ServiceThread() as service:
            with pytest.raises(ServiceError, match="'warmstart'"):
                list(
                    service.client().request(
                        {
                            "schema": PROTOCOL_VERSION,
                            "kind": "sweep",
                            "plan": plan_spec(),
                            "warmstart": "chain",
                        }
                    )
                )

    def test_unsupported_schema(self):
        with ServiceThread() as service:
            with pytest.raises(ServiceError) as err:
                list(
                    service.client().request(
                        {
                            "schema": PROTOCOL_VERSION + 1,
                            "kind": "sweep",
                            "plan": plan_spec(),
                        }
                    )
                )
        assert err.value.code == "unsupported-schema"
        assert not err.value.retriable

    def test_bad_plan_spec_is_bad_request(self):
        with ServiceThread() as service:
            with pytest.raises(ServiceError) as err:
                service.client().run_sweep(
                    {"instances": "nope", "solvers": ["greedy-min-fp"]}
                )
        assert err.value.code == "bad-request"

    def test_request_id_is_echoed(self):
        with ServiceThread() as service:
            events = list(
                service.client().submit(
                    "solve",
                    request_id="my-req",
                    solver="greedy-min-fp",
                    instance=instance_spec(),
                    threshold=60.0,
                )
            )
        assert all(e["id"] == "my-req" for e in events)


class TestSharedStore:
    def test_warm_resubmit_zero_invocations(self, tmp_path):
        counter = tmp_path / "count"
        spec = plan_spec(
            solver="svc-count", opts={"counter_file": str(counter)}
        )
        store = open_store(tmp_path / "results.sqlite")
        with register_synthetic("svc-count", counting_min_fp):
            with ServiceThread(store, workers=2) as service:
                _, cold = service.client().run_sweep(spec, seed=0)
                _, warm = service.client().run_sweep(spec, seed=0)
        assert cold["solver_invocations"] == 3
        assert warm["solver_invocations"] == 0
        assert warm["cached"] == 3
        assert invocations(counter) == 3  # the ground truth

    def test_many_clients_one_store(self, tmp_path):
        """8 concurrent clients hammer one shared SQLite store: after a
        single warm-up pass, no client triggers a solver invocation."""
        counter = tmp_path / "count"
        spec = plan_spec(
            solver="svc-count",
            opts={"counter_file": str(counter)},
            thresholds=(30.0, 50.0, 70.0, 90.0),
        )
        store = open_store(tmp_path / "results.sqlite")
        clients, errors = 8, []
        with register_synthetic("svc-count", counting_min_fp):
            with ServiceThread(store, workers=4, queue_size=64) as service:
                _, warmup = service.client().run_sweep(spec, seed=0)
                assert warmup["solver_invocations"] == 4

                def hammer(index):
                    try:
                        client = service.client()
                        for _ in range(3):
                            _, done = client.run_sweep(spec, seed=0)
                            assert done["solver_invocations"] == 0, done
                            assert done["ok"] == 4
                    except Exception as exc:  # surfaced below
                        errors.append((index, exc))

                threads = [
                    threading.Thread(target=hammer, args=(i,))
                    for i in range(clients)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(120)
                stats = service.client().stats()
        assert errors == []
        assert invocations(counter) == 4
        store_stats = stats["store"]
        # warm-up missed 4 and wrote 4; everything after hit
        assert store_stats["misses"] == 4
        assert store_stats["writes"] == 4
        assert store_stats["hits"] == clients * 3 * 4
        assert store_stats["records"] == 4
        assert stats["requests"]["completed"] == clients * 3 + 1
        assert stats["outcomes"]["solver_invocations"] == 4

    def test_mixed_solve_and_sweep_share_cache(self, tmp_path):
        counter = tmp_path / "count"
        store = MemoryStore()
        with register_synthetic("svc-count", counting_min_fp):
            with ServiceThread(store, workers=2) as service:
                client = service.client()
                outcome = client.solve(
                    "svc-count",
                    instance_spec(),
                    threshold=60.0,
                    opts={"counter_file": str(counter)},
                )
                assert outcome["cached"] is False
                # the same (instance, solver, threshold, opts) point
                # inside a sweep is served from the shared store
                _, done = client.run_sweep(
                    plan_spec(
                        solver="svc-count",
                        thresholds=(60.0,),
                        opts={"counter_file": str(counter)},
                    )
                )
        assert done["cached"] == 1
        assert invocations(counter) == 1


class TestQueueing:
    def test_priority_orders_queued_jobs(self, tmp_path):
        """With one busy worker, a high-priority submit overtakes an
        earlier low-priority one in the queue."""
        gate = tmp_path / "gate"
        counter = tmp_path / "count"
        blocker_spec = {
            "schema": PROTOCOL_VERSION,
            "kind": "solve",
            "solver": "svc-gate",
            "instance": instance_spec(),
            "threshold": 50.0,
            "opts": {"gate": str(gate), "counter_file": str(counter)},
        }
        finished: list[str] = []
        lock = threading.Lock()

        def submit(client, label, priority):
            list(
                client.submit(
                    "solve",
                    priority=priority,
                    solver="greedy-min-fp",
                    instance=instance_spec(),
                    threshold=50.0 + priority,
                    request_id=label,
                )
            )
            with lock:
                finished.append(label)

        with register_synthetic("svc-gate", gated_min_fp):
            with ServiceThread(workers=1, queue_size=8) as service:
                client = service.client()
                blocker = threading.Thread(
                    target=lambda: list(client.request(blocker_spec))
                )
                blocker.start()
                deadline = time.monotonic() + 10
                while invocations(counter) == 0:  # worker is busy
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
                low = threading.Thread(
                    target=submit, args=(client, "low", 0)
                )
                low.start()
                time.sleep(0.2)  # low is queued first
                high = threading.Thread(
                    target=submit, args=(client, "high", 5)
                )
                high.start()
                time.sleep(0.2)  # let high reach the queue
                gate.touch()  # release the worker
                for thread in (blocker, low, high):
                    thread.join(30)
        assert finished == ["high", "low"]

    def test_queue_full_is_retriable(self, tmp_path):
        gate = tmp_path / "gate"
        counter = tmp_path / "count"

        def gated_request(rid):
            return {
                "schema": PROTOCOL_VERSION,
                "kind": "solve",
                "id": rid,
                "solver": "svc-gate",
                "instance": instance_spec(),
                "threshold": 50.0,
                "opts": {"gate": str(gate), "counter_file": str(counter)},
            }

        with register_synthetic("svc-gate", gated_min_fp):
            with ServiceThread(workers=1, queue_size=1) as service:
                client = service.client()
                threads = [
                    threading.Thread(
                        target=lambda r=rid: list(
                            client.request(gated_request(r))
                        )
                    )
                    for rid in ("in-flight", "queued")
                ]
                overflow = None
                try:
                    threads[0].start()
                    deadline = time.monotonic() + 10
                    while invocations(counter) == 0:
                        assert time.monotonic() < deadline
                        time.sleep(0.01)
                    threads[1].start()
                    deadline = time.monotonic() + 10
                    # wait until the queued job holds the single slot
                    # (control requests bypass the queue)
                    while (
                        client.stats()["server"]["queue_depth"] < 1
                    ):
                        assert time.monotonic() < deadline
                        time.sleep(0.01)
                    # the overflow rejection is immediate + retriable
                    with pytest.raises(ServiceError) as err:
                        client.solve(
                            "greedy-min-fp",
                            instance_spec(),
                            threshold=60.0,
                        )
                    overflow = err.value
                finally:
                    gate.touch()
                    for thread in threads:
                        if thread.ident is not None:
                            thread.join(30)
        assert overflow is not None
        assert overflow.code == "queue-full"
        assert overflow.retriable

    def test_backpressure_bounded_events_slow_reader(self):
        """A tiny event buffer with a slow reader still delivers every
        event; the producer is throttled, not buffering unboundedly."""
        spec = plan_spec(thresholds=(20.0, 30.0, 40.0, 50.0, 60.0, 70.0))
        with ServiceThread(
            MemoryStore(), workers=1, event_buffer=1
        ) as service:
            with socket.socket(socket.AF_UNIX) as sock:
                sock.settimeout(60)
                sock.connect(service.socket_path)
                request = {
                    "schema": PROTOCOL_VERSION,
                    "kind": "sweep",
                    "plan": spec,
                    "seed": 0,
                }
                sock.sendall(json.dumps(request).encode() + b"\n")
                stream = sock.makefile("rb")
                events = []
                for line in stream:
                    events.append(json.loads(line))
                    time.sleep(0.05)  # slow consumer
                    if events[-1]["event"] in ("done", "error"):
                        break
        outcomes = [e for e in events if e["event"] == "outcome"]
        assert len(outcomes) == 6
        assert events[-1]["event"] == "done"
        assert events[-1]["ok"] == 6

    def test_abandoned_client_does_not_wedge_the_worker(self):
        """Disconnecting mid-stream must not deadlock the worker that
        is blocked emitting into the bounded event buffer."""
        spec = plan_spec(thresholds=tuple(float(t) for t in range(20, 80)))
        with ServiceThread(
            MemoryStore(), workers=1, event_buffer=1
        ) as service:
            sock = socket.socket(socket.AF_UNIX)
            sock.settimeout(30)
            sock.connect(service.socket_path)
            request = {
                "schema": PROTOCOL_VERSION,
                "kind": "sweep",
                "plan": spec,
                "seed": 0,
            }
            sock.sendall(json.dumps(request).encode() + b"\n")
            # read one event, then vanish
            sock.makefile("rb").readline()
            sock.close()
            # the worker must come free again: a fresh solve completes
            outcome = service.client(timeout=60).solve(
                "greedy-min-fp", instance_spec(), threshold=60.0
            )
            assert outcome["ok"] is True


class TestDraining:
    def test_drain_finishes_in_flight_and_rejects_new(self, tmp_path):
        gate = tmp_path / "gate"
        counter = tmp_path / "count"
        in_flight = {
            "schema": PROTOCOL_VERSION,
            "kind": "solve",
            "solver": "svc-gate",
            "instance": instance_spec(),
            "threshold": 50.0,
            "opts": {"gate": str(gate), "counter_file": str(counter)},
        }
        events: list[dict] = []
        with register_synthetic("svc-gate", gated_min_fp):
            with ServiceThread(workers=1) as service:
                client = service.client(timeout=60)
                runner = threading.Thread(
                    target=lambda: events.extend(
                        client.request(in_flight)
                    )
                )
                runner.start()
                deadline = time.monotonic() + 10
                while invocations(counter) == 0:
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
                service.drain()
                deadline = time.monotonic() + 10
                while not service.client().ping()["draining"]:
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
                with pytest.raises(ServiceError) as err:
                    client.solve(
                        "greedy-min-fp", instance_spec(), threshold=60.0
                    )
                assert err.value.code == "draining"
                assert err.value.retriable
                gate.touch()
                runner.join(30)
            # ServiceThread.__exit__ returned: the loop drained fully
        assert events[-1]["event"] == "done"
        assert events[-1]["ok"] == 1

    def test_drain_request_shuts_the_loop_down(self):
        service = ServiceThread().start()
        try:
            assert service.client().drain()["event"] == "draining"
            # with nothing in flight the loop finishes on its own
            service._thread.join(30)
            assert not service._thread.is_alive()
        finally:
            service.stop()


class TestServiceThreadHarness:
    def test_client_requires_http_opt_in(self):
        with ServiceThread() as service:
            with pytest.raises(Exception, match="http"):
                service.client(http=True)

    def test_double_start_rejected(self):
        with ServiceThread() as service:
            with pytest.raises(Exception, match="started"):
                service.start()
