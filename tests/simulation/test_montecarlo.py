"""Monte-Carlo validation of the closed-form metrics (experiment E12)."""

import pytest

np = pytest.importorskip("numpy", exc_type=ImportError)

from repro.core import IntervalMapping, failure_probability
from repro.simulation import (
    ElectionPolicy,
    ExponentialLifetimeModel,
    empirical_vs_analytic_fp,
    estimate_failure_probability,
    sample_latencies,
)

from tests.helpers import make_instance


class TestFailureProbabilityEstimation:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_analytic_within_3_sigma(self, seed, fig5):
        import random as pyrandom

        from repro.algorithms.heuristics import random_mapping

        app, plat = make_instance("comm-homogeneous", n=3, m=5, seed=seed)
        mapping = random_mapping(3, 5, pyrandom.Random(seed))
        analytic = failure_probability(mapping, plat)
        est = estimate_failure_probability(
            mapping, plat, trials=60_000, rng=np.random.default_rng(seed)
        )
        assert est.contains(analytic, z=4.0)

    def test_figure5_mappings(self, fig5):
        rng = np.random.default_rng(7)
        report = empirical_vs_analytic_fp(
            fig5.two_interval_mapping, fig5.platform, trials=200_000, rng=rng
        )
        assert abs(report["z"]) < 4.0
        assert report["analytic"] == pytest.approx(
            fig5.claimed_two_interval_fp, rel=1e-12
        )

    def test_exponential_model_same_marginals(self, fig5):
        rng = np.random.default_rng(11)
        est = estimate_failure_probability(
            fig5.two_interval_mapping,
            fig5.platform,
            trials=100_000,
            rng=rng,
            model=ExponentialLifetimeModel(mission_time=3.0),
        )
        assert est.contains(
            failure_probability(fig5.two_interval_mapping, fig5.platform),
            z=4.0,
        )

    def test_degenerate_cases(self):
        from repro.core import Platform

        plat = Platform.fully_homogeneous(2, failure_probability=0.0)
        mapping = IntervalMapping.single_interval(1, {1, 2})
        est = estimate_failure_probability(
            mapping, plat, trials=1000, rng=np.random.default_rng(0)
        )
        assert est.mean == 0.0
        assert est.ci95[0] <= 0.0 <= est.ci95[1]

    def test_trials_validation(self, fig5):
        with pytest.raises(ValueError):
            estimate_failure_probability(
                fig5.two_interval_mapping, fig5.platform, trials=0
            )

    def test_estimate_interface(self):
        from repro.simulation import MonteCarloEstimate

        est = MonteCarloEstimate(mean=0.5, stderr=0.01, trials=100)
        lo, hi = est.ci95
        assert lo == pytest.approx(0.5 - 1.96 * 0.01)
        assert hi == pytest.approx(0.5 + 1.96 * 0.01)
        assert est.contains(0.52, z=3.0)
        assert not est.contains(0.56, z=3.0)


class TestLatencySampling:
    def test_bounded_by_worst_case(self, fig5):
        sample = sample_latencies(
            fig5.two_interval_mapping,
            fig5.application,
            fig5.platform,
            trials=500,
            rng=np.random.default_rng(3),
        )
        assert sample.worst_case == pytest.approx(22.0)
        assert sample.max_latency <= sample.worst_case + 1e-9
        assert sample.mean_latency <= sample.worst_case

    def test_success_rate_tracks_fp(self, fig5):
        sample = sample_latencies(
            fig5.two_interval_mapping,
            fig5.application,
            fig5.platform,
            trials=4000,
            rng=np.random.default_rng(5),
        )
        analytic_success = 1 - failure_probability(
            fig5.two_interval_mapping, fig5.platform
        )
        assert sample.success_rate == pytest.approx(
            analytic_success, abs=0.03
        )

    def test_worst_case_policy_sampling(self, fig5):
        sample = sample_latencies(
            fig5.two_interval_mapping,
            fig5.application,
            fig5.platform,
            trials=50,
            rng=np.random.default_rng(9),
            policy=ElectionPolicy.WORST_CASE,
        )
        # worst-case policy ignores the scenario: every latency equals it
        assert all(
            lat == pytest.approx(sample.worst_case)
            for lat in sample.latencies
        )

    def test_all_failed_sample(self):
        from repro.core import Platform, PipelineApplication

        plat = Platform.fully_homogeneous(1, failure_probability=1.0)
        app = PipelineApplication(works=(1.0,), volumes=(1, 1))
        mapping = IntervalMapping.single_interval(1, {1})
        sample = sample_latencies(
            mapping, app, plat, trials=10, rng=np.random.default_rng(0)
        )
        assert sample.failures == 10
        assert sample.success_rate == 0.0
        import math

        assert math.isnan(sample.mean_latency)
