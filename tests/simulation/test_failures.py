"""Tests for failure models and scenarios."""

import math

import pytest

np = pytest.importorskip("numpy", exc_type=ImportError)

from repro.core import Platform
from repro.exceptions import SimulationError
from repro.simulation import (
    BernoulliMissionModel,
    ExponentialLifetimeModel,
    FailureScenario,
    all_fail_except,
    no_failures,
)


@pytest.fixture
def platform():
    return Platform.communication_homogeneous(
        [1.0, 2.0, 3.0], failure_probabilities=[0.0, 0.5, 1.0]
    )


class TestFailureScenario:
    def test_alive_queries(self):
        sc = FailureScenario((math.inf, 0.0, 5.0), mission_time=10.0)
        assert sc.alive(1, 0.0) and sc.alive(1, 100.0)
        assert not sc.alive(2, 0.0)
        assert sc.alive(3, 4.9) and not sc.alive(3, 5.0)
        assert sc.survives_mission(1)
        assert not sc.survives_mission(2)
        assert not sc.survives_mission(3)
        assert sc.surviving_set == frozenset({1})
        assert sc.num_processors == 3

    def test_helpers(self, platform):
        sc = no_failures(platform)
        assert sc.surviving_set == frozenset({1, 2, 3})
        sc2 = all_fail_except(platform, [2], mission_time=1.0)
        assert sc2.surviving_set == frozenset({2})


class TestBernoulliModel:
    def test_certain_outcomes(self, platform):
        rng = np.random.default_rng(0)
        model = BernoulliMissionModel()
        sc = model.draw(platform, rng)
        assert sc.survives_mission(1)  # fp = 0
        assert not sc.survives_mission(3)  # fp = 1

    def test_marginal_frequency(self, platform):
        rng = np.random.default_rng(1)
        model = BernoulliMissionModel()
        alive = model.draw_alive_matrix(platform, 50_000, rng)
        assert alive.shape == (50_000, 3)
        assert alive[:, 0].all()
        assert not alive[:, 2].any()
        assert alive[:, 1].mean() == pytest.approx(0.5, abs=0.01)

    def test_scalar_draw_matches_marginals(self, platform):
        rng = np.random.default_rng(2)
        model = BernoulliMissionModel()
        survived = sum(
            model.draw(platform, rng).survives_mission(2)
            for _ in range(5000)
        )
        assert survived / 5000 == pytest.approx(0.5, abs=0.03)


class TestExponentialModel:
    def test_rate_calibration(self):
        model = ExponentialLifetimeModel(mission_time=10.0)
        lam = model.rate(0.5)
        # P(exp(lam) <= 10) = 1 - exp(-10 lam) = 0.5
        assert 1 - math.exp(-10 * lam) == pytest.approx(0.5, rel=1e-12)
        assert model.rate(0.0) == 0.0
        assert math.isinf(model.rate(1.0))

    def test_mission_marginal(self, platform):
        rng = np.random.default_rng(3)
        model = ExponentialLifetimeModel(mission_time=7.0)
        survived = sum(
            model.draw(platform, rng).survives_mission(2)
            for _ in range(5000)
        )
        assert survived / 5000 == pytest.approx(0.5, abs=0.03)

    def test_extreme_fps(self, platform):
        rng = np.random.default_rng(4)
        model = ExponentialLifetimeModel(mission_time=1.0)
        sc = model.draw(platform, rng)
        assert sc.failure_times[0] == math.inf  # fp=0 never fails
        assert sc.failure_times[2] == 0.0  # fp=1 fails immediately

    def test_alive_matrix_marginals(self, platform):
        rng = np.random.default_rng(5)
        model = ExponentialLifetimeModel(mission_time=2.0)
        alive = model.draw_alive_matrix(platform, 50_000, rng)
        assert alive[:, 1].mean() == pytest.approx(0.5, abs=0.01)

    def test_rejects_bad_mission_time(self):
        with pytest.raises(SimulationError):
            ExponentialLifetimeModel(mission_time=0.0)
