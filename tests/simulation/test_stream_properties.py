"""Property-based invariants of the discrete-event stream engine."""

import random as pyrandom

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.heuristics import random_mapping
from repro.core import latency
from repro.simulation import (
    check_dataflow,
    check_one_port,
    realized_latency,
    simulate_stream,
)

from tests.helpers import make_instance
from tests.strategies import applications, comm_homogeneous_platforms


@st.composite
def stream_cases(draw):
    """(application, platform, mapping, num_datasets) quadruples."""
    app = draw(applications(min_stages=1, max_stages=3))
    plat = draw(comm_homogeneous_platforms(min_processors=1, max_processors=4))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    mapping = random_mapping(app.num_stages, plat.size, pyrandom.Random(seed))
    num = draw(st.integers(min_value=1, max_value=5))
    return app, plat, mapping, num


@given(stream_cases())
@settings(max_examples=60, deadline=None)
def test_stream_invariants_hold(case):
    """One-port and causality hold for every random stream run."""
    app, plat, mapping, num = case
    res = simulate_stream(mapping, app, plat, num_datasets=num)
    check_one_port(res.trace)
    check_dataflow(res.trace, num)
    assert res.num_datasets == num
    assert res.all_succeeded  # no failure scenario was injected


@given(stream_cases())
@settings(max_examples=40, deadline=None)
def test_first_dataset_matches_arithmetic_replay(case):
    app, plat, mapping, _ = case
    res = simulate_stream(mapping, app, plat, num_datasets=1)
    arith = realized_latency(mapping, app, plat)
    assert abs(res.outcomes[0].latency - arith.latency) <= 1e-9 * max(
        1.0, arith.latency
    )


@given(stream_cases())
@settings(max_examples=40, deadline=None)
def test_sojourn_never_below_isolated_latency(case):
    """Queueing can only delay a data set, never accelerate it."""
    app, plat, mapping, num = case
    res = simulate_stream(mapping, app, plat, num_datasets=num)
    isolated = realized_latency(mapping, app, plat).latency
    for outcome in res.outcomes:
        assert outcome.latency >= isolated - 1e-9


@given(stream_cases())
@settings(max_examples=30, deadline=None)
def test_worst_case_upper_bounds_single_dataset(case):
    """A lone data set can never exceed the paper's worst-case latency."""
    app, plat, mapping, _ = case
    res = simulate_stream(mapping, app, plat, num_datasets=1)
    assert res.outcomes[0].latency <= latency(mapping, app, plat) + 1e-9


@given(stream_cases())
@settings(max_examples=30, deadline=None)
def test_round_robin_completes_everything_without_failures(case):
    app, plat, mapping, num = case
    res = simulate_stream(
        mapping, app, plat, num_datasets=num, round_robin=True
    )
    assert res.all_succeeded
    check_one_port(res.trace)


def test_wide_arrival_period_decouples_datasets():
    """With arrivals slower than the service time, every data set sees
    the isolated latency (no queueing): sojourn variance collapses."""
    app, plat = make_instance("comm-homogeneous", n=3, m=4, seed=3)
    mapping = random_mapping(3, 4, pyrandom.Random(3))
    isolated = realized_latency(mapping, app, plat).latency
    res = simulate_stream(
        mapping,
        app,
        plat,
        num_datasets=6,
        arrival_period=isolated * 4.0,
    )
    for outcome in res.outcomes:
        assert abs(outcome.latency - isolated) <= 1e-9 * max(1.0, isolated)
