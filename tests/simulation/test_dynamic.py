"""Dynamic-platform runtime: determinism, policies, spec dialect."""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    iter_simulation,
    load_spec,
    resolve_mapping,
    run_simulation,
    sim_from_spec,
    sim_to_spec,
)
from repro.core.metrics import failure_probability, latency
from repro.core.topology import IN, OUT
from repro.engine.registry import solve
from repro.engine.sweeps import SweepInstance, SweepPlan
from repro.exceptions import ReproError, SimulationError
from repro.simulation.dynamic import (
    FAILURE_MODELS,
    EpochReport,
    PlatformEvent,
    SimulationResult,
    SimulationSpec,
    make_arrivals,
    make_timeline,
    percentile,
    subplatform,
)
from repro.simulation.failures import no_failures
from repro.simulation.pipeline import realized_latency
from repro.workloads.scenarios import make_scenario

from tests.helpers import make_instance


def base_spec(**overrides):
    spec = {
        "schema": 1,
        "kind": "simulation",
        "instance": {
            "scenario": "failure-mix",
            "seed": 3,
            "params": {"stages": 6},
        },
        "solver": "greedy-min-fp",
        "threshold": 80.0,
        "policy": "resolve-warm",
        "trace": {"kind": "uniform", "items": 20, "rate": 0.05},
        "failures": {"events": [[60.0, "kill", 2]]},
        "seed": 7,
    }
    spec.update(overrides)
    return spec


def stripped(result: SimulationResult) -> dict:
    """Result dict minus wall-clock (the only non-deterministic field)."""
    d = result.to_dict()
    d.pop("resolve_seconds")
    return d


class TestSpecDialect:
    def test_round_trip_is_stable(self):
        spec = sim_from_spec(base_spec())
        wire = sim_to_spec(spec)
        assert wire["schema"] == 1
        assert wire["kind"] == "simulation"
        assert sim_to_spec(sim_from_spec(wire)) == wire

    def test_unknown_keys_rejected_when_schema_declared(self):
        with pytest.raises(ReproError, match="'polcy'"):
            sim_from_spec(base_spec(polcy="none"))

    def test_lenient_without_schema(self):
        spec = base_spec(extra="ignored")
        del spec["schema"]
        assert sim_from_spec(spec).policy == "resolve-warm"

    def test_wrong_kind_rejected(self):
        with pytest.raises(ReproError, match="kind"):
            sim_from_spec(base_spec(kind="sweep"))

    @pytest.mark.parametrize("schema", [0, 99, "1", 1.0, True])
    def test_bad_schema_rejected(self, schema):
        with pytest.raises(ReproError):
            sim_from_spec(base_spec(schema=schema))

    def test_unknown_policy_rejected(self):
        with pytest.raises(ReproError, match="policy"):
            sim_from_spec(base_spec(policy="pray"))

    def test_unknown_solver_rejected(self):
        with pytest.raises(ReproError):
            sim_from_spec(base_spec(solver="no-such-solver"))

    def test_threshold_required_by_threshold_solvers(self):
        spec = base_spec()
        del spec["threshold"]
        with pytest.raises(ReproError, match="threshold"):
            sim_from_spec(spec)

    def test_unknown_failure_model_lists_names(self):
        with pytest.raises(ReproError) as err:
            run_simulation(base_spec(failures={"model": "gamma-ray"}))
        for name in FAILURE_MODELS:
            assert name in str(err.value)

    def test_unknown_trace_key_rejected(self):
        with pytest.raises(ReproError, match="'burstsize'"):
            run_simulation(base_spec(trace={"kind": "burst", "burstsize": 3}))


class TestLoadSpecDispatch:
    def test_mapping_dispatch_by_kind(self):
        assert isinstance(load_spec(base_spec()), SimulationSpec)
        sweep = {
            "schema": 1,
            "kind": "sweep",
            "instances": [{"scenario": "failure-mix", "seed": 1}],
            "solvers": ["greedy-min-fp"],
            "thresholds": [50.0],
        }
        assert isinstance(load_spec(sweep), SweepPlan)

    def test_legacy_sweep_without_kind(self):
        sweep = {
            "instances": [{"scenario": "failure-mix", "seed": 1}],
            "solvers": ["greedy-min-fp"],
            "thresholds": [50.0],
        }
        assert isinstance(load_spec(sweep), SweepPlan)

    def test_path_dispatch(self, tmp_path):
        path = tmp_path / "sim.json"
        path.write_text(json.dumps(base_spec()))
        assert isinstance(load_spec(path), SimulationSpec)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError, match="kind"):
            load_spec({"kind": "mystery"})


class TestTimelines:
    def test_explicit_events_sorted_and_validated(self):
        app, plat = make_instance("comm-homogeneous", n=4, m=4, seed=0)
        events = make_timeline(
            plat,
            {"events": [[5.0, "revive", 2], [1.0, "kill", 2]]},
            seed=0,
            horizon=10.0,
        )
        assert [e.time for e in events] == [1.0, 5.0]
        with pytest.raises(ReproError, match="outside"):
            make_timeline(
                plat, {"events": [[1.0, "kill", 99]]}, seed=0, horizon=10.0
            )

    def test_bad_action_rejected(self):
        with pytest.raises(SimulationError, match="kill"):
            PlatformEvent(1.0, "explode", 1)

    @pytest.mark.parametrize("model", sorted(FAILURE_MODELS))
    def test_models_are_deterministic_per_seed(self, model):
        app, plat = make_instance("comm-homogeneous", n=4, m=6, seed=1)
        a = make_timeline(plat, {"model": model}, seed=5, horizon=100.0)
        b = make_timeline(plat, {"model": model}, seed=5, horizon=100.0)
        c = make_timeline(plat, {"model": model}, seed=6, horizon=100.0)
        assert a == b
        assert all(0 <= e.time < 100.0 for e in a)
        # different seeds should (for these fp ranges) differ
        assert a != c

    def test_certain_failure_kills_at_time_zero(self):
        from repro.core.platform import Platform

        plat = Platform.communication_homogeneous(
            [1.0, 1.0, 1.0],
            bandwidth=1.0,
            failure_probabilities=[1.0, 1.0, 1.0],
        )
        events = make_timeline(plat, {"model": "iid"}, seed=0, horizon=50.0)
        assert {(e.time, e.action) for e in events} == {(0.0, "kill")}

    def test_tiered_sizes_must_sum(self):
        app, plat = make_instance("comm-homogeneous", n=3, m=4, seed=2)
        with pytest.raises(SimulationError, match="sum"):
            make_timeline(
                plat,
                {"model": "tiered", "params": {"tier_sizes": [1, 1, 1]}},
                seed=0,
                horizon=50.0,
            )


class TestArrivals:
    def test_uniform(self):
        arr = make_arrivals({"kind": "uniform", "items": 4, "rate": 2.0}, 0)
        assert arr == (0.0, 0.5, 1.0, 1.5)

    def test_burst_groups(self):
        arr = make_arrivals(
            {"kind": "burst", "items": 6, "rate": 1.0, "burst_size": 3}, 0
        )
        assert arr == (0.0, 0.0, 0.0, 3.0, 3.0, 3.0)

    def test_poisson_deterministic_per_seed(self):
        a = make_arrivals({"kind": "poisson", "items": 10, "rate": 1.0}, 3)
        b = make_arrivals({"kind": "poisson", "items": 10, "rate": 1.0}, 3)
        assert a == b
        assert len(a) == 10 and all(x >= 0 for x in a)

    def test_explicit_arrivals_sorted(self):
        assert make_arrivals({"arrivals": [3.0, 1.0]}, 0) == (1.0, 3.0)

    @pytest.mark.parametrize(
        "trace",
        [
            {"kind": "martian"},
            {"items": 0},
            {"rate": 0.0},
            {"arrivals": []},
            {"kind": "burst", "burst_size": 0},
        ],
    )
    def test_bad_traces_rejected(self, trace):
        with pytest.raises(ReproError):
            make_arrivals(trace, 0)


class TestSubplatform:
    @pytest.mark.parametrize(
        "kind", ["comm-homogeneous", "fully-heterogeneous"]
    )
    def test_preserves_speeds_fps_and_links(self, kind):
        app, plat = make_instance(kind, n=4, m=5, seed=4)
        live = [2, 4, 5]
        sub, index_map = subplatform(plat, live)
        assert sub.size == 3
        assert index_map == {2: 1, 4: 2, 5: 3}
        for old, new in index_map.items():
            assert sub.speed(new) == plat.speed(old)
            assert sub.failure_probability(new) == plat.failure_probability(
                old
            )
            assert sub.topology.bandwidth(IN, new) == plat.topology.bandwidth(
                IN, old
            )
            assert sub.topology.bandwidth(new, OUT) == plat.topology.bandwidth(
                old, OUT
            )
        assert sub.topology.bandwidth(1, 3) == plat.topology.bandwidth(2, 5)

    def test_empty_live_rejected(self):
        app, plat = make_instance("comm-homogeneous", n=3, m=3, seed=0)
        with pytest.raises(ReproError):
            subplatform(plat, [])


class TestDeterminism:
    def test_same_spec_same_seed_byte_identical(self):
        spec = base_spec(
            failures={"model": "iid", "params": {"repair": 50.0}}
        )
        a = run_simulation(spec)
        b = run_simulation(spec)
        assert json.dumps(stripped(a), sort_keys=True) == json.dumps(
            stripped(b), sort_keys=True
        )

    def test_different_seed_differs(self):
        spec = base_spec(
            instance={"scenario": "churn-pool", "seed": 2},
            failures={"model": "iid"},
            trace={"kind": "poisson", "items": 30, "rate": 0.1},
        )
        a = run_simulation(spec)
        b = run_simulation({**spec, "seed": spec["seed"] + 1})
        assert [e["t"] for e in a.event_log] != [
            e["t"] for e in b.event_log
        ]

    def test_serial_equals_streamed(self):
        spec = base_spec(
            failures={
                "events": [[40.0, "kill", 2], [70.0, "revive", 2]]
            }
        )
        serial = run_simulation(spec)
        events = list(iter_simulation(spec))
        *epochs, final = events
        assert all(isinstance(e, EpochReport) for e in epochs)
        assert isinstance(final, SimulationResult)
        assert [e.to_dict() for e in epochs] == [
            e.to_dict() for e in serial.epochs
        ]
        assert json.dumps(stripped(final), sort_keys=True) == json.dumps(
            stripped(serial), sort_keys=True
        )

    def test_epochs_stream_in_time_order(self):
        spec = base_spec(
            failures={"model": "correlated-burst", "params": {"repair": 30.0}},
            horizon=300.0,
        )
        epochs = [
            e for e in iter_simulation(spec) if isinstance(e, EpochReport)
        ]
        assert [e.index for e in epochs] == list(range(len(epochs)))
        assert all(
            epochs[i].end <= epochs[i + 1].end + 1e-12
            for i in range(len(epochs) - 1)
        )


class TestRealizedSemantics:
    def test_single_item_matches_realized_latency(self):
        """A lone item through an idle pipeline realizes exactly the
        FIRST_SURVIVOR arithmetic of the static replay."""
        for scenario_seed in (1, 5, 9):
            spec = base_spec(
                instance={
                    "scenario": "edge-hub-cloud",
                    "seed": scenario_seed,
                    "params": {"stages": 6},
                },
                threshold=120.0,
                policy="none",
                trace={"arrivals": [0.0]},
                failures={"events": []},
            )
            res = run_simulation(spec)
            app, plat = make_scenario(
                "edge-hub-cloud", seed=scenario_seed, params={"stages": 6}
            )
            mapping = solve("greedy-min-fp", app, plat, 120.0).mapping
            ref = realized_latency(
                mapping, app, plat, no_failures(plat)
            )
            assert res.items_completed == 1
            assert res.latency_max == ref.latency

    def test_quiet_run_completes_everything(self):
        res = run_simulation(base_spec(failures={"events": []}))
        assert res.items_lost == 0
        assert res.items_disrupted == 0
        assert res.resolves == 0
        assert res.realized_success == 1.0
        assert len(res.epochs) == 1
        assert res.epochs[0].trigger == "initial"

    def test_kill_unused_processor_is_invisible(self):
        """Killing a processor outside the mapping never disrupts items
        or triggers a re-solve."""
        quiet = run_simulation(base_spec(failures={"events": []}))
        used = set()
        for alloc in quiet.epochs[0].mapping["allocations"]:
            used.update(alloc)
        unused = sorted(set(range(1, 7)) - used)
        if not unused:
            pytest.skip("mapping uses every processor")
        res = run_simulation(
            base_spec(failures={"events": [[30.0, "kill", unused[0]]]})
        )
        assert res.resolves == 0
        assert res.items_disrupted == 0
        assert len(res.epochs) == 1

    def test_total_kill_under_none_loses_items(self):
        spec = base_spec(
            policy="none",
            failures={
                "events": [[60.0, "kill", u] for u in range(1, 7)]
            },
            horizon=500.0,
        )
        res = run_simulation(spec)
        assert res.items_lost > 0
        assert res.epochs[-1].down
        assert math.isinf(res.epochs[-1].analytic_latency)
        assert res.epochs[-1].analytic_fp == 1.0
        assert res.realized_success < 1.0

    def test_revive_recovers_resolve_policy(self):
        kills = [[60.0, "kill", u] for u in range(1, 7)]
        spec = base_spec(
            policy="resolve-warm",
            failures={"events": kills + [[100.0, "revive", 3]]},
            horizon=800.0,
        )
        res = run_simulation(spec)
        assert res.items_lost == 0
        assert any(e.down for e in res.epochs)
        assert not res.epochs[-1].down
        assert res.resolves >= 2  # down-transition + recovery

    def test_disruption_counted_for_aborted_service(self):
        spec = base_spec(
            trace={"arrivals": [0.0]},
            failures={"events": [[1.0, "kill", u] for u in range(1, 6)]},
            policy="resolve-warm",
            horizon=300.0,
        )
        res = run_simulation(spec)
        # the lone item either finished before the kills or was disrupted
        assert res.items_completed == 1
        assert res.disruption_events >= 0

    def test_result_json_safe(self):
        spec = base_spec(
            policy="none",
            trace={"arrivals": [0.0]},
            failures={"events": [[0.5, "kill", u] for u in range(1, 7)]},
            horizon=50.0,
        )
        payload = json.dumps(run_simulation(spec).to_dict())
        parsed = json.loads(payload)  # strict JSON: no NaN/Infinity
        assert parsed["items_lost"] == 1
        assert parsed["latency_p50"] is None


class TestWarmNeverWorse:
    @given(
        scenario_seed=st.integers(min_value=0, max_value=40),
        kill_count=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=25, deadline=None)
    def test_resolve_warm_mapping_at_least_as_good_as_none(
        self, scenario_seed, kill_count
    ):
        """After any failure, the warm re-solve is never worse (on the
        solver's objective, fp-at-threshold) than keeping the surviving
        mapping — the warm start seeds the solver with exactly that
        mapping."""
        app, plat = make_scenario("churn-pool", seed=scenario_seed)
        threshold = 70.0
        try:
            current = solve("greedy-min-fp", app, plat, threshold).mapping
        except ReproError:
            return  # no initial mapping at this threshold: vacuous
        live = sorted(
            set(range(1, plat.size + 1))
            - set(range(1, kill_count + 1))
        )
        common = dict(
            solver="greedy-min-fp",
            threshold=threshold,
            current=current,
            seed=scenario_seed,
        )
        kept = resolve_mapping(
            app, plat, live, policy="none", **common
        )
        warm = resolve_mapping(
            app, plat, live, policy="resolve-warm", **common
        )
        if kept.mapping is None:
            return  # 'none' is down; warm is trivially no worse
        assert warm.mapping is not None
        assert warm.failure_probability <= kept.failure_probability
        assert warm.latency <= threshold + 1e-9

    def test_warm_outcome_reports_seeding(self):
        app, plat = make_scenario("churn-pool", seed=1)
        current = solve("greedy-min-fp", app, plat, 70.0).mapping
        live = list(range(2, plat.size + 1))
        outcome = resolve_mapping(
            app,
            plat,
            live,
            solver="greedy-min-fp",
            threshold=70.0,
            policy="resolve-warm",
            current=current,
            seed=0,
        )
        assert outcome.ok
        assert outcome.warm_seeded
        assert not outcome.fell_back
        # analytic numbers are computed on the original platform
        assert outcome.latency == latency(outcome.mapping, app, plat)
        assert outcome.failure_probability == failure_probability(
            outcome.mapping, plat
        )

    def test_none_policy_restricts_current(self):
        app, plat = make_scenario("churn-pool", seed=1)
        current = solve("greedy-min-fp", app, plat, 70.0).mapping
        live = list(range(2, plat.size + 1))
        outcome = resolve_mapping(
            app,
            plat,
            live,
            solver="greedy-min-fp",
            threshold=70.0,
            policy="none",
            current=current,
        )
        if outcome.mapping is not None:
            for alloc in outcome.mapping.allocations:
                assert 1 not in alloc


class TestPercentile:
    def test_nearest_rank(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        assert percentile(xs, 50) == 2.0
        assert percentile(xs, 0) == 1.0
        assert percentile(xs, 100) == 4.0
        assert percentile([5.0], 99) == 5.0
        assert math.isnan(percentile([], 50))


class TestSpecObjects:
    def test_from_spec_builds_instance_and_solver(self):
        spec = sim_from_spec(base_spec())
        assert isinstance(spec.instance, SweepInstance)
        assert spec.solver.name == "greedy-min-fp"
        assert spec.threshold == 80.0

    def test_accepts_spec_object_directly(self):
        spec = sim_from_spec(base_spec(trace={"arrivals": [0.0]}))
        res = run_simulation(spec)
        assert res.spec is spec
