"""Tests for trace records and the one-port invariant checker."""

import pytest

from repro.core import IN, OUT
from repro.exceptions import SimulationError
from repro.simulation import Trace, TraceEvent, TraceKind, check_one_port
from repro.simulation.trace import check_dataflow


def transfer(start, end, src, dst, dataset=0, amount=1.0):
    return TraceEvent(TraceKind.TRANSFER, start, end, src, dst, dataset, amount)


def compute(start, end, proc, dataset=0, amount=1.0):
    return TraceEvent(TraceKind.COMPUTE, start, end, proc, proc, dataset, amount)


class TestTraceEvent:
    def test_duration(self):
        ev = transfer(1.0, 3.5, IN, 1)
        assert ev.duration == 2.5

    def test_rejects_negative_duration(self):
        with pytest.raises(SimulationError):
            transfer(3.0, 1.0, IN, 1)


class TestTrace:
    def test_filters_and_makespan(self):
        trace = Trace()
        trace.record(transfer(0, 1, IN, 1))
        trace.record(compute(1, 4, 1))
        trace.record(transfer(4, 5, 1, OUT))
        assert len(trace.transfers()) == 2
        assert len(trace.computations()) == 1
        assert trace.makespan == 5.0
        assert len(trace.events_touching(1)) == 3
        assert len(trace.events_touching(IN)) == 1

    def test_empty_makespan(self):
        assert Trace().makespan == 0.0


class TestOnePortChecker:
    def test_accepts_serialized_transfers(self):
        trace = Trace()
        trace.record(transfer(0, 2, IN, 1))
        trace.record(transfer(2, 4, IN, 2))
        check_one_port(trace)

    def test_rejects_overlap_at_sender(self):
        trace = Trace()
        trace.record(transfer(0, 2, 1, 2))
        trace.record(transfer(1, 3, 1, 3))
        with pytest.raises(SimulationError, match="one-port"):
            check_one_port(trace)

    def test_rejects_overlap_at_receiver(self):
        trace = Trace()
        trace.record(transfer(0, 2, 1, 3))
        trace.record(transfer(1, 3, 2, 3))
        with pytest.raises(SimulationError, match="one-port"):
            check_one_port(trace)

    def test_distinct_pairs_may_overlap(self):
        # paper: independent communications between distinct pairs are fine
        trace = Trace()
        trace.record(transfer(0, 2, 1, 2))
        trace.record(transfer(0, 2, 3, 4))
        check_one_port(trace)

    def test_zero_duration_exempt(self):
        trace = Trace()
        trace.record(transfer(0, 2, 1, 2))
        trace.record(transfer(1, 1, 1, 3, amount=0.0))
        check_one_port(trace)

    def test_compute_overlap_allowed(self):
        # one-port constrains communications only
        trace = Trace()
        trace.record(transfer(0, 2, IN, 1))
        trace.record(compute(1, 5, 1))
        check_one_port(trace)


class TestDataflowChecker:
    def test_accepts_causal_trace(self):
        trace = Trace()
        trace.record(transfer(0, 1, IN, 1, dataset=0))
        trace.record(compute(1, 2, 1, dataset=0))
        check_dataflow(trace, 1)

    def test_rejects_compute_before_arrival(self):
        trace = Trace()
        trace.record(transfer(1, 2, IN, 1, dataset=0))
        trace.record(compute(0, 1, 1, dataset=0))
        with pytest.raises(SimulationError):
            check_dataflow(trace, 1)
