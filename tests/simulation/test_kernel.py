"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.exceptions import SimulationError
from repro.simulation import Resource, Simulator


class TestTimeAndTimeouts:
    def test_clock_advances(self):
        sim = Simulator()
        fired = []

        def proc():
            yield sim.timeout(5.0)
            fired.append(sim.now)
            yield sim.timeout(2.5)
            fired.append(sim.now)

        sim.process(proc())
        end = sim.run()
        assert fired == [5.0, 7.5]
        assert end == 7.5

    def test_zero_delay(self):
        sim = Simulator()
        done = []

        def proc():
            yield sim.timeout(0.0)
            done.append(sim.now)

        sim.process(proc())
        sim.run()
        assert done == [0.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_run_until(self):
        sim = Simulator()
        fired = []

        def proc():
            yield sim.timeout(10.0)
            fired.append("late")

        sim.process(proc())
        assert sim.run(until=5.0) == 5.0
        assert fired == []
        sim.run()
        assert fired == ["late"]

    def test_deterministic_tie_breaking(self):
        sim = Simulator()
        order = []

        def make(name):
            def proc():
                yield sim.timeout(1.0)
                order.append(name)

            return proc

        for name in ["a", "b", "c"]:
            sim.process(make(name)())
        sim.run()
        assert order == ["a", "b", "c"]


class TestEvents:
    def test_manual_event_passes_value(self):
        sim = Simulator()
        got = []

        def waiter(ev):
            value = yield ev
            got.append(value)

        ev = sim.event()

        def trigger():
            yield sim.timeout(3.0)
            ev.trigger("payload")

        sim.process(waiter(ev))
        sim.process(trigger())
        sim.run()
        assert got == ["payload"]

    def test_event_cannot_trigger_twice(self):
        sim = Simulator()
        ev = sim.event()
        ev.trigger()
        with pytest.raises(SimulationError):
            ev.trigger()

    def test_waiting_on_triggered_event_resumes_immediately(self):
        sim = Simulator()
        ev = sim.event()
        ev.trigger(42)
        got = []

        def waiter():
            value = yield ev
            got.append((sim.now, value))

        sim.process(waiter())
        sim.run()
        assert got == [(0.0, 42)]

    def test_process_is_an_event(self):
        sim = Simulator()
        results = []

        def child():
            yield sim.timeout(4.0)
            return "child-result"

        def parent():
            value = yield sim.process(child())
            results.append((sim.now, value))

        sim.process(parent())
        sim.run()
        assert results == [(4.0, "child-result")]

    def test_all_of(self):
        sim = Simulator()
        done = []

        def worker(delay):
            yield sim.timeout(delay)

        def parent():
            procs = [sim.process(worker(d)) for d in (1.0, 5.0, 3.0)]
            yield sim.all_of(procs)
            done.append(sim.now)

        sim.process(parent())
        sim.run()
        assert done == [5.0]

    def test_all_of_empty(self):
        sim = Simulator()
        done = []

        def parent():
            yield sim.all_of([])
            done.append(sim.now)

        sim.process(parent())
        sim.run()
        assert done == [0.0]

    def test_yielding_non_event_raises(self):
        sim = Simulator()

        def bad():
            yield 42

        sim.process(bad())
        with pytest.raises(SimulationError):
            sim.run()


class TestResource:
    def test_mutual_exclusion(self):
        sim = Simulator()
        port = sim.resource(1, "port")
        spans = []

        def worker(name, hold):
            yield port.request()
            start = sim.now
            yield sim.timeout(hold)
            spans.append((name, start, sim.now))
            port.release()

        sim.process(worker("a", 2.0))
        sim.process(worker("b", 3.0))
        sim.run()
        assert spans == [("a", 0.0, 2.0), ("b", 2.0, 5.0)]

    def test_capacity_two(self):
        sim = Simulator()
        res = sim.resource(2)
        finish = []

        def worker():
            yield res.request()
            yield sim.timeout(1.0)
            finish.append(sim.now)
            res.release()

        for _ in range(4):
            sim.process(worker())
        sim.run()
        assert finish == [1.0, 1.0, 2.0, 2.0]

    def test_fifo_order(self):
        sim = Simulator()
        res = sim.resource(1)
        order = []

        def worker(name):
            yield res.request()
            order.append(name)
            yield sim.timeout(1.0)
            res.release()

        for name in "abcd":
            sim.process(worker(name))
        sim.run()
        assert order == list("abcd")

    def test_release_idle_raises(self):
        sim = Simulator()
        res = sim.resource(1)
        with pytest.raises(SimulationError):
            res.release()

    def test_counters(self):
        sim = Simulator()
        res = sim.resource(1)

        def holder():
            yield res.request()
            assert res.in_use == 1
            yield sim.timeout(1.0)
            res.release()

        def waiter():
            ev = res.request()
            assert res.queue_length == 1
            yield ev
            res.release()

        sim.process(holder())
        sim.process(waiter())
        sim.run()
        assert res.in_use == 0
        assert res.queue_length == 0

    def test_capacity_validation(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.resource(0)

    def test_cannot_schedule_in_past(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(5.0)

        sim.process(proc())
        sim.run()
        with pytest.raises(SimulationError):
            sim._schedule_at(1.0, sim.event())
