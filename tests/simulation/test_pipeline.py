"""Tests for the pipeline replay and the discrete-event stream engine."""

import math

import pytest

from repro.core import IntervalMapping, latency
from repro.exceptions import SimulationError
from repro.simulation import (
    ElectionPolicy,
    all_fail_except,
    check_dataflow,
    check_one_port,
    no_failures,
    realized_latency,
    simulate_stream,
)

from tests.helpers import make_instance


class TestWorstCaseReplay:
    """WORST_CASE replay must equal the analytic latency exactly."""

    def test_figure34(self, fig34):
        for mapping in (*fig34.single_processor_mappings, fig34.split_mapping):
            wc = realized_latency(
                mapping,
                fig34.application,
                fig34.platform,
                policy=ElectionPolicy.WORST_CASE,
            )
            assert wc.success
            assert wc.latency == latency(
                mapping, fig34.application, fig34.platform
            )

    def test_figure5(self, fig5):
        wc = realized_latency(
            fig5.two_interval_mapping,
            fig5.application,
            fig5.platform,
            policy=ElectionPolicy.WORST_CASE,
        )
        assert wc.latency == latency(
            fig5.two_interval_mapping, fig5.application, fig5.platform
        )

    @pytest.mark.parametrize(
        "kind", ["fully-homogeneous", "comm-homogeneous", "fully-heterogeneous"]
    )
    @pytest.mark.parametrize("seed", range(4))
    def test_identity_on_random_instances(self, kind, seed):
        from repro.algorithms.heuristics import random_mapping
        import random as pyrandom

        app, plat = make_instance(kind, n=4, m=5, seed=seed)
        mapping = random_mapping(4, 5, pyrandom.Random(seed))
        wc = realized_latency(
            mapping, app, plat, policy=ElectionPolicy.WORST_CASE
        )
        assert wc.latency == pytest.approx(
            latency(mapping, app, plat), rel=1e-12
        )


class TestFirstSurvivorReplay:
    def test_no_failures_success(self, fig5):
        outcome = realized_latency(
            fig5.two_interval_mapping, fig5.application, fig5.platform
        )
        assert outcome.success
        assert outcome.latency <= latency(
            fig5.two_interval_mapping, fig5.application, fig5.platform
        )

    def test_dead_interval_fails(self, fig5):
        scenario = all_fail_except(fig5.platform, [1], mission_time=1.0)
        outcome = realized_latency(
            fig5.two_interval_mapping,
            fig5.application,
            fig5.platform,
            scenario,
        )
        assert not outcome.success
        assert outcome.failed_interval == 2
        assert math.isinf(outcome.latency)

    def test_survivor_subset_latency(self, fig5):
        # only the slow processor and one fast replica survive
        scenario = all_fail_except(fig5.platform, [1, 5], mission_time=1.0)
        outcome = realized_latency(
            fig5.two_interval_mapping,
            fig5.application,
            fig5.platform,
            scenario,
        )
        # 10 (input) + 1 (w1) + 1 (send) + 1 (w2/100) + 0 (output) = 13
        assert outcome.success
        assert outcome.latency == pytest.approx(13.0)

    def test_scenario_size_mismatch(self, fig5):
        from repro.simulation import FailureScenario

        bad = FailureScenario((math.inf,), mission_time=1.0)
        with pytest.raises(SimulationError):
            realized_latency(
                fig5.two_interval_mapping,
                fig5.application,
                fig5.platform,
                bad,
            )

    @pytest.mark.parametrize("seed", range(6))
    def test_bounded_by_worst_case(self, seed):
        """Realistic replay never exceeds the analytic worst case."""
        np = pytest.importorskip("numpy", exc_type=ImportError)

        from repro.algorithms.heuristics import random_mapping
        from repro.simulation import BernoulliMissionModel
        import random as pyrandom

        app, plat = make_instance("comm-homogeneous", n=4, m=5, seed=seed)
        mapping = random_mapping(4, 5, pyrandom.Random(seed))
        worst = latency(mapping, app, plat)
        model = BernoulliMissionModel()
        rng = np.random.default_rng(seed)
        for _ in range(50):
            outcome = realized_latency(
                mapping, app, plat, model.draw(plat, rng)
            )
            if outcome.success:
                assert outcome.latency <= worst + 1e-9


class TestStreamEngine:
    def test_single_dataset_matches_arithmetic_replay(self, fig5):
        res = simulate_stream(
            fig5.two_interval_mapping, fig5.application, fig5.platform
        )
        arith = realized_latency(
            fig5.two_interval_mapping, fig5.application, fig5.platform
        )
        assert res.outcomes[0].latency == pytest.approx(arith.latency)

    @pytest.mark.parametrize("kind", ["comm-homogeneous", "fully-heterogeneous"])
    @pytest.mark.parametrize("seed", range(3))
    def test_single_dataset_identity_random(self, kind, seed):
        import random as pyrandom

        from repro.algorithms.heuristics import random_mapping

        app, plat = make_instance(kind, n=3, m=4, seed=seed)
        mapping = random_mapping(3, 4, pyrandom.Random(seed))
        res = simulate_stream(mapping, app, plat)
        arith = realized_latency(mapping, app, plat)
        assert res.outcomes[0].latency == pytest.approx(
            arith.latency, rel=1e-9
        )

    def test_trace_invariants(self, fig5):
        res = simulate_stream(
            fig5.two_interval_mapping,
            fig5.application,
            fig5.platform,
            num_datasets=10,
        )
        check_one_port(res.trace)
        check_dataflow(res.trace, 10)
        assert res.all_succeeded
        assert res.num_datasets == 10

    def test_failed_interval_rejects_datasets(self, fig5):
        scenario = all_fail_except(fig5.platform, [1], mission_time=1.0)
        res = simulate_stream(
            fig5.two_interval_mapping,
            fig5.application,
            fig5.platform,
            num_datasets=3,
            scenario=scenario,
        )
        assert not res.all_succeeded
        assert all(o.failed_interval == 2 for o in res.outcomes)

    def test_arrival_period_spacing(self, fig5):
        res = simulate_stream(
            fig5.two_interval_mapping,
            fig5.application,
            fig5.platform,
            num_datasets=4,
            arrival_period=50.0,
        )
        # period larger than the pipeline's service time: no queueing, so
        # every data set sees the single-data-set latency
        lats = [o.latency for o in res.outcomes]
        assert all(
            lat == pytest.approx(lats[0], rel=1e-9) for lat in lats
        )
        assert res.period == pytest.approx(50.0, rel=1e-9)

    def test_backpressure_increases_sojourn(self, fig5):
        res = simulate_stream(
            fig5.two_interval_mapping,
            fig5.application,
            fig5.platform,
            num_datasets=8,
        )
        # back-to-back feeding: later data sets queue behind earlier ones
        assert res.outcomes[-1].latency >= res.outcomes[0].latency - 1e-9
        assert res.max_latency >= res.mean_latency

    def test_round_robin_distributes(self, fig5):
        res = simulate_stream(
            fig5.two_interval_mapping,
            fig5.application,
            fig5.platform,
            num_datasets=10,
            round_robin=True,
        )
        assert res.all_succeeded
        check_one_port(res.trace)
        # each fast replica computes exactly one of the 10 data sets
        compute_by_proc = {}
        for ev in res.trace.computations():
            if ev.src != 1:
                compute_by_proc.setdefault(ev.src, []).append(ev.dataset)
        assert len(compute_by_proc) == 10
        assert all(len(v) == 1 for v in compute_by_proc.values())

    def test_round_robin_designee_death_fails_dataset(self, fig5):
        # kill fast processor P2: datasets routed to it are lost
        survivors = [1] + list(range(3, 12))
        scenario = all_fail_except(fig5.platform, survivors, mission_time=1.0)
        res = simulate_stream(
            fig5.two_interval_mapping,
            fig5.application,
            fig5.platform,
            num_datasets=10,
            scenario=scenario,
            round_robin=True,
        )
        failed = [o for o in res.outcomes if not o.success]
        assert len(failed) == 1  # exactly the data set designated to P2

    def test_validation_errors(self, fig5):
        with pytest.raises(SimulationError):
            simulate_stream(
                fig5.two_interval_mapping,
                fig5.application,
                fig5.platform,
                num_datasets=0,
            )
        with pytest.raises(SimulationError):
            simulate_stream(
                fig5.two_interval_mapping,
                fig5.application,
                fig5.platform,
                arrival_period=-1.0,
            )

    def test_stream_result_properties_with_failures(self, fig5):
        scenario = all_fail_except(fig5.platform, [1], mission_time=1.0)
        res = simulate_stream(
            fig5.two_interval_mapping,
            fig5.application,
            fig5.platform,
            num_datasets=2,
            scenario=scenario,
        )
        assert res.max_latency == -math.inf
        assert math.isnan(res.mean_latency)
        assert math.isnan(res.period)
