"""Tests for the Theorem 3 TSP reduction gadget."""

import pytest

from repro.algorithms.mono import minimize_latency_one_to_one_exact
from repro.exceptions import ReproError
from repro.reductions import (
    TSPInstance,
    build_one_to_one_gadget,
    random_tsp_instance,
    solve_hamiltonian_path,
    verify_tsp_reduction,
)


def triangle_instance(bound=10.0):
    """3 vertices: s=0, t=2; path 0-1-2 costs 3, direct 0-2 costs 9."""
    costs = [
        [0.0, 1.0, 9.0],
        [1.0, 0.0, 2.0],
        [9.0, 2.0, 0.0],
    ]
    return TSPInstance(costs, source=0, tail=2, bound=bound)


class TestTSPInstance:
    def test_validation(self):
        with pytest.raises(ReproError):
            TSPInstance([[0.0]], 0, 0, 1.0)  # too small
        with pytest.raises(ReproError):
            TSPInstance([[0, 1], [2, 0]], 0, 1, 1.0)  # asymmetric
        with pytest.raises(ReproError):
            TSPInstance([[0, -1], [-1, 0]], 0, 1, 1.0)  # negative cost
        with pytest.raises(ReproError):
            TSPInstance([[0, 1], [1, 0]], 0, 0, 1.0)  # source == tail
        with pytest.raises(ReproError):
            TSPInstance([[0, 1, 1], [1, 0, 1]], 0, 1, 1.0)  # not square


class TestHamiltonianPathSolver:
    def test_triangle(self):
        cost, path = solve_hamiltonian_path(triangle_instance())
        assert cost == 3.0
        assert path == [0, 1, 2]

    def test_path_visits_all_vertices_once(self):
        inst = random_tsp_instance(6, seed=2)
        cost, path = solve_hamiltonian_path(inst)
        assert sorted(path) == list(range(6))
        assert path[0] == inst.source and path[-1] == inst.tail
        assert cost == pytest.approx(
            sum(inst.costs[a][b] for a, b in zip(path, path[1:]))
        )

    def test_optimality_against_bruteforce(self):
        from itertools import permutations

        inst = random_tsp_instance(6, seed=5)
        middles = [
            v
            for v in range(inst.num_vertices)
            if v not in (inst.source, inst.tail)
        ]
        brute = min(
            sum(
                inst.costs[a][b]
                for a, b in zip(
                    [inst.source, *perm, inst.tail],
                    [*perm, inst.tail],
                )
            )
            for perm in permutations(middles)
        )
        cost, _ = solve_hamiltonian_path(inst)
        assert cost == pytest.approx(brute)


class TestGadget:
    def test_gadget_structure(self):
        inst = triangle_instance()
        app, plat, threshold = build_one_to_one_gadget(inst)
        n = inst.num_vertices
        assert app.num_stages == n
        assert plat.size == n
        assert threshold == inst.bound + n + 2
        assert set(app.works) == {1.0}
        assert set(app.volumes) == {1.0}
        assert set(plat.speeds) == {1.0}
        # encoded bandwidths
        assert plat.bandwidth(1, 2) == pytest.approx(1.0)  # cost 1
        assert plat.bandwidth(2, 3) == pytest.approx(0.5)  # cost 2
        from repro.core import IN, OUT

        assert plat.bandwidth(IN, 1) == 1.0  # source vertex
        assert plat.bandwidth(3, OUT) == 1.0  # tail vertex
        # slow links are below the budget-busting threshold
        assert plat.bandwidth(IN, 2) < 1.0 / (inst.bound + n + 3)

    def test_optimal_mapping_follows_optimal_path(self):
        inst = triangle_instance()
        app, plat, _ = build_one_to_one_gadget(inst)
        result = minimize_latency_one_to_one_exact(app, plat)
        # expected: latency = path cost + n + 2 = 3 + 3 + 2 = 8
        assert result.latency == pytest.approx(8.0)
        chain = [next(iter(a)) for a in result.mapping.allocations]
        assert chain == [1, 2, 3]  # vertices 0,1,2 as processors 1,2,3


class TestReductionEquivalence:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_instances(self, seed):
        inst = random_tsp_instance(5, seed=seed)
        report = verify_tsp_reduction(inst)
        assert report["optimal_latency"] == pytest.approx(
            report["expected_latency"]
        )

    def test_yes_instance(self):
        report = verify_tsp_reduction(triangle_instance(bound=3.0))
        assert report["decision"] is True

    def test_no_instance(self):
        report = verify_tsp_reduction(triangle_instance(bound=2.9))
        assert report["decision"] is False

    def test_boundary_instance_exact(self):
        """Bound exactly at the optimal path cost is a YES instance."""
        inst = triangle_instance(bound=3.0)
        cost, _ = solve_hamiltonian_path(inst)
        assert cost == inst.bound
        assert verify_tsp_reduction(inst)["decision"] is True
