"""Tests for the Theorem 7 2-PARTITION reduction gadget."""

import math

import pytest

from repro.exceptions import ReproError
from repro.reductions import (
    TwoPartitionInstance,
    build_bicriteria_gadget,
    feasible_replica_set,
    random_two_partition_instance,
    solve_two_partition,
    verify_two_partition_reduction,
)


class TestTwoPartitionInstance:
    def test_validation(self):
        with pytest.raises(ReproError):
            TwoPartitionInstance([5])
        with pytest.raises(ReproError):
            TwoPartitionInstance([1, -2])
        with pytest.raises(ReproError):
            TwoPartitionInstance([1, 0])

    def test_total(self):
        assert TwoPartitionInstance([1, 2, 3]).total == 6


class TestSubsetSumSolver:
    def test_simple_yes(self):
        exists, subset = solve_two_partition(TwoPartitionInstance([1, 2, 3]))
        assert exists
        assert sum([1, 2, 3][i] for i in subset) == 3

    def test_odd_total_no(self):
        exists, subset = solve_two_partition(TwoPartitionInstance([1, 2, 4]))
        assert not exists and subset is None

    def test_even_total_but_no_partition(self):
        exists, _ = solve_two_partition(TwoPartitionInstance([1, 1, 6]))
        assert not exists

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_bruteforce(self, seed):
        from itertools import combinations

        inst = random_two_partition_instance(7, seed=seed)
        half, S = None, inst.total
        brute = any(
            2 * sum(c) == S
            for k in range(1, 7)
            for c in combinations(inst.values, k)
        )
        exists, subset = solve_two_partition(inst)
        assert exists == brute
        if exists:
            assert 2 * sum(inst.values[i] for i in subset) == S


class TestGadget:
    def test_structure(self):
        inst = TwoPartitionInstance([2, 3, 5])
        app, plat, L, FP = build_bicriteria_gadget(inst)
        assert app.num_stages == 1
        assert app.works == (1.0,)
        assert app.volumes == (1.0, 1.0)
        assert plat.size == 3
        assert L == inst.total / 2 + 2
        assert FP == pytest.approx(math.exp(-inst.total / 2))
        from repro.core import IN, OUT

        assert plat.bandwidth(IN, 1) == pytest.approx(1 / 2)
        assert plat.bandwidth(IN, 3) == pytest.approx(1 / 5)
        assert plat.bandwidth(2, OUT) == 1.0
        assert plat.failure_probability(2) == pytest.approx(math.exp(-3))

    def test_metrics_match_closed_form(self):
        """Library metrics and the proof's closed forms agree on replica
        sets of the gadget."""
        inst = TwoPartitionInstance([2, 3, 5, 4])
        ok_metric, set_metric = feasible_replica_set(inst, use_metrics=True)
        ok_closed, set_closed = feasible_replica_set(inst, use_metrics=False)
        assert ok_metric == ok_closed
        if ok_metric:
            total = inst.total
            assert 2 * sum(inst.values[i] for i in set_metric) == total
            assert 2 * sum(inst.values[i] for i in set_closed) == total


class TestReductionEquivalence:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_instances(self, seed):
        inst = random_two_partition_instance(6, seed=seed)
        report = verify_two_partition_reduction(inst)
        assert report["partition_exists"] == report["gadget_feasible"]

    @pytest.mark.parametrize("seed", range(5))
    def test_forced_yes(self, seed):
        inst = random_two_partition_instance(7, seed=seed, force_yes=True)
        report = verify_two_partition_reduction(inst)
        assert report["partition_exists"] is True
        assert report["replica_set"] is not None

    @pytest.mark.parametrize("seed", range(5))
    def test_forced_no(self, seed):
        inst = random_two_partition_instance(6, seed=seed, force_yes=False)
        report = verify_two_partition_reduction(inst)
        assert report["partition_exists"] is False
