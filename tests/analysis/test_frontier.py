"""Tests for frontier computation and gap metrics."""

import pytest

from repro.analysis import (
    exact_frontier,
    frontier_fp_gap,
    latency_grid,
    single_interval_frontier,
    sweep_frontier,
)
from repro.algorithms.heuristics import (
    greedy_minimize_fp,
    local_search_minimize_fp,
    single_interval_minimize_fp,
)
from repro.core import BiCriteriaPoint

from tests.helpers import make_instance


class TestExactFrontier:
    def test_non_dominated_and_sorted(self):
        app, plat = make_instance("comm-homogeneous", n=3, m=4, seed=0)
        front = exact_frontier(app, plat)
        lats = [p.latency for p in front]
        fps = [p.failure_probability for p in front]
        assert lats == sorted(lats)
        assert fps == sorted(fps, reverse=True)
        assert front  # never empty

    def test_figure5_contains_paper_solution(self, fig5):
        front = exact_frontier(fig5.application, fig5.platform)
        target = (22.0, fig5.claimed_two_interval_fp)
        assert any(
            p.latency <= target[0] + 1e-9
            and p.failure_probability <= target[1] + 1e-12
            for p in front
        )


class TestSingleIntervalFrontier:
    def test_subset_of_exact_on_failhom(self):
        """With homogeneous failures (Lemma 1 domain) the single-interval
        frontier must match the exact frontier."""
        app, plat = make_instance(
            "comm-homogeneous-failhom", n=3, m=4, seed=1
        )
        exact = exact_frontier(app, plat)
        single = single_interval_frontier(app, plat)
        gap = frontier_fp_gap(exact, single)
        assert gap["match_rate"] == 1.0

    def test_gap_positive_on_figure5(self, fig5):
        exact = exact_frontier(fig5.application, fig5.platform)
        single = single_interval_frontier(fig5.application, fig5.platform)
        gap = frontier_fp_gap(exact, single)
        assert gap["max_fp_excess"] > 0.1  # the 0.64-vs-0.197 effect


class TestSweepFrontier:
    @pytest.mark.parametrize(
        "solver",
        [
            single_interval_minimize_fp,
            greedy_minimize_fp,
            local_search_minimize_fp,
        ],
    )
    def test_sweep_produces_valid_frontier(self, solver):
        app, plat = make_instance("comm-homogeneous", n=3, m=4, seed=2)
        front = sweep_frontier(app, plat, solver, num_points=8)
        assert front
        lats = [p.latency for p in front]
        assert lats == sorted(lats)

    def test_local_search_sweep_close_to_exact(self):
        app, plat = make_instance("comm-homogeneous", n=3, m=4, seed=3)
        exact = exact_frontier(app, plat)
        approx = sweep_frontier(
            app, plat, local_search_minimize_fp, num_points=10
        )
        gap = frontier_fp_gap(exact, approx)
        assert gap["mean_fp_excess"] < 0.1

    def test_latency_grid_spans_candidates(self):
        app, plat = make_instance("comm-homogeneous", n=3, m=4, seed=4)
        grid = latency_grid(app, plat, num_points=5)
        assert len(grid) == 5
        assert grid == sorted(grid)


class TestGapMetric:
    def test_identical_frontiers_have_zero_gap(self):
        front = [BiCriteriaPoint(1.0, 0.5), BiCriteriaPoint(2.0, 0.2)]
        gap = frontier_fp_gap(front, list(front))
        assert gap["mean_fp_excess"] == 0.0
        assert gap["match_rate"] == 1.0

    def test_missing_budget_counts_as_worst(self):
        ref = [BiCriteriaPoint(1.0, 0.5)]
        cand = [BiCriteriaPoint(5.0, 0.1)]  # infeasible at budget 1.0
        gap = frontier_fp_gap(ref, cand)
        assert gap["max_fp_excess"] == pytest.approx(0.5)

    def test_empty_reference_rejected(self):
        with pytest.raises(ValueError):
            frontier_fp_gap([], [BiCriteriaPoint(1.0, 0.5)])
