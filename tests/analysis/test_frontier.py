"""Tests for frontier computation and gap metrics."""

import pytest

from repro.analysis import (
    exact_frontier,
    frontier_fp_gap,
    latency_grid,
    single_interval_frontier,
    sweep_frontier,
)
from repro.algorithms.heuristics import (
    greedy_minimize_fp,
    local_search_minimize_fp,
    single_interval_minimize_fp,
)
from repro.core import BiCriteriaPoint

from tests.helpers import make_instance


class TestExactFrontier:
    def test_non_dominated_and_sorted(self):
        app, plat = make_instance("comm-homogeneous", n=3, m=4, seed=0)
        front = exact_frontier(app, plat)
        lats = [p.latency for p in front]
        fps = [p.failure_probability for p in front]
        assert lats == sorted(lats)
        assert fps == sorted(fps, reverse=True)
        assert front  # never empty

    def test_figure5_contains_paper_solution(self, fig5):
        front = exact_frontier(fig5.application, fig5.platform)
        target = (22.0, fig5.claimed_two_interval_fp)
        assert any(
            p.latency <= target[0] + 1e-9
            and p.failure_probability <= target[1] + 1e-12
            for p in front
        )


class TestSingleIntervalFrontier:
    def test_subset_of_exact_on_failhom(self):
        """With homogeneous failures (Lemma 1 domain) the single-interval
        frontier must match the exact frontier."""
        app, plat = make_instance(
            "comm-homogeneous-failhom", n=3, m=4, seed=1
        )
        exact = exact_frontier(app, plat)
        single = single_interval_frontier(app, plat)
        gap = frontier_fp_gap(exact, single)
        assert gap["match_rate"] == 1.0

    def test_gap_positive_on_figure5(self, fig5):
        exact = exact_frontier(fig5.application, fig5.platform)
        single = single_interval_frontier(fig5.application, fig5.platform)
        gap = frontier_fp_gap(exact, single)
        assert gap["max_fp_excess"] > 0.1  # the 0.64-vs-0.197 effect


class TestSweepFrontier:
    @pytest.mark.parametrize(
        "solver",
        [
            single_interval_minimize_fp,
            greedy_minimize_fp,
            local_search_minimize_fp,
        ],
    )
    def test_sweep_produces_valid_frontier(self, solver):
        app, plat = make_instance("comm-homogeneous", n=3, m=4, seed=2)
        front = sweep_frontier(app, plat, solver, num_points=8)
        assert front
        lats = [p.latency for p in front]
        assert lats == sorted(lats)

    def test_local_search_sweep_close_to_exact(self):
        app, plat = make_instance("comm-homogeneous", n=3, m=4, seed=3)
        exact = exact_frontier(app, plat)
        approx = sweep_frontier(
            app, plat, local_search_minimize_fp, num_points=10
        )
        gap = frontier_fp_gap(exact, approx)
        assert gap["mean_fp_excess"] < 0.1

    def test_latency_grid_spans_candidates(self):
        app, plat = make_instance("comm-homogeneous", n=3, m=4, seed=4)
        grid = latency_grid(app, plat, num_points=5)
        assert len(grid) == 5
        assert grid == sorted(grid)

    def test_latency_grid_top_point_is_exactly_hi(self):
        """Regression: lo + (n-1)*step can land a float ulp off hi,
        making the slowest single-interval candidate infeasible at the
        top threshold."""
        from repro.algorithms.heuristics import single_interval_candidates

        for seed in range(6):
            app, plat = make_instance("comm-homogeneous", n=3, m=4, seed=seed)
            candidates = [
                r.latency for r in single_interval_candidates(app, plat)
            ]
            lo, hi = min(candidates), max(candidates)
            for num_points in (2, 5, 20, 33):
                grid = latency_grid(app, plat, num_points=num_points)
                assert grid[0] == lo
                assert grid[-1] == hi  # bitwise, not approx
                assert grid == sorted(set(grid))  # strictly increasing

    def test_latency_grid_slowest_candidate_feasible_at_top(self):
        """With the endpoint pinned, every single-interval candidate is
        admissible somewhere on the grid — including full replication."""
        from repro.algorithms.heuristics import single_interval_candidates
        from repro.api import threshold_sweep

        app, plat = make_instance("comm-homogeneous", n=3, m=4, seed=4)
        candidates = list(single_interval_candidates(app, plat))
        best_fp = min(r.failure_probability for r in candidates)
        grid = latency_grid(app, plat, num_points=7)
        outcomes = threshold_sweep(
            "single-interval-min-fp", app, plat, [grid[-1]]
        )
        assert outcomes[0].ok
        assert outcomes[0].result.failure_probability == pytest.approx(
            best_fp, abs=0.0
        )

    def test_sweep_skips_infeasible_by_kind_not_string(self):
        """Satellite regression: feasibility is decided by the structured
        error kind, so sweeps survive exception renaming/wrapping but
        still fail loudly on genuine solver crashes."""
        from repro.api import threshold_sweep
        from repro.exceptions import SolverError as SE

        from tests.engine.synthetic import (
            always_crash_min_fp,
            register_synthetic,
        )

        app, plat = make_instance("comm-homogeneous", n=3, m=4, seed=2)
        # infeasible thresholds are skipped silently
        front = sweep_frontier(
            app, plat, "greedy-min-fp", thresholds=[1e-9, 50.0, 80.0]
        )
        assert front
        # crashes are not mistaken for infeasibility
        with register_synthetic("crashy-sweep", always_crash_min_fp):
            with pytest.raises(SE, match="sweep .* failed"):
                sweep_frontier(app, plat, "crashy-sweep", thresholds=[50.0])

    def test_sweep_frontier_with_store_reuses_solves(self):
        from repro.engine import MemoryStore

        app, plat = make_instance("comm-homogeneous", n=3, m=4, seed=2)
        store = MemoryStore()
        cold = sweep_frontier(
            app, plat, "greedy-min-fp", num_points=6, store=store
        )
        warm = sweep_frontier(
            app, plat, "greedy-min-fp", num_points=6, store=store
        )
        assert store.stats.hits == 6
        assert [(p.latency, p.failure_probability) for p in cold] == [
            (p.latency, p.failure_probability) for p in warm
        ]


class TestGapMetric:
    def test_identical_frontiers_have_zero_gap(self):
        front = [BiCriteriaPoint(1.0, 0.5), BiCriteriaPoint(2.0, 0.2)]
        gap = frontier_fp_gap(front, list(front))
        assert gap["mean_fp_excess"] == 0.0
        assert gap["match_rate"] == 1.0

    def test_missing_budget_counts_as_worst(self):
        ref = [BiCriteriaPoint(1.0, 0.5)]
        cand = [BiCriteriaPoint(5.0, 0.1)]  # infeasible at budget 1.0
        gap = frontier_fp_gap(ref, cand)
        assert gap["max_fp_excess"] == pytest.approx(0.5)

    def test_empty_reference_rejected(self):
        with pytest.raises(ValueError):
            frontier_fp_gap([], [BiCriteriaPoint(1.0, 0.5)])
