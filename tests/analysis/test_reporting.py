"""Tests for the ASCII reporting helpers."""

from repro.analysis import format_frontier, format_mapping_row, format_table
from repro.core import BiCriteriaPoint


class TestFormatTable:
    def test_alignment(self):
        out = format_table(
            ("name", "value"), [("a", 1.0), ("long-name", 123.456)]
        )
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_float_formatting(self):
        out = format_table(("x",), [(0.123456789,)])
        assert "0.123457" in out

    def test_custom_float_format(self):
        out = format_table(("x",), [(0.5,)], float_format="{:.1f}")
        assert "0.5" in out

    def test_non_float_cells(self):
        out = format_table(("a", "b"), [(1, "text")])
        assert "text" in out


class TestFrontierFormatting:
    def test_format_frontier(self):
        pts = [
            BiCriteriaPoint(1.0, 0.5, payload="m1"),
            BiCriteriaPoint(2.0, 0.25, payload="m2"),
        ]
        out = format_frontier(pts, title="test front")
        assert "test front (2 points)" in out
        assert "m1" in out and "m2" in out

    def test_none_payload(self):
        out = format_frontier([BiCriteriaPoint(1.0, 0.5)])
        assert "-" in out

    def test_mapping_row(self):
        row = format_mapping_row("label", 1.5, 0.25, "MAP")
        assert "label" in row and "MAP" in row
        assert "1.5000" in row and "0.250000" in row
