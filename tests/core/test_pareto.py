"""Unit + property tests for Pareto-dominance utilities."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BiCriteriaPoint, attainment, dominates, pareto_front
from repro.core.pareto import is_dominated

_vals = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
_points = st.lists(
    st.builds(BiCriteriaPoint, latency=_vals, failure_probability=_vals),
    min_size=0,
    max_size=40,
)


class TestDominates:
    def test_strict_dominance(self):
        a = BiCriteriaPoint(1.0, 0.1)
        b = BiCriteriaPoint(2.0, 0.2)
        assert dominates(a, b)
        assert not dominates(b, a)

    def test_equal_points_do_not_dominate(self):
        a = BiCriteriaPoint(1.0, 0.1)
        b = BiCriteriaPoint(1.0, 0.1)
        assert not dominates(a, b)
        assert not dominates(b, a)

    def test_one_axis_improvement_suffices(self):
        a = BiCriteriaPoint(1.0, 0.1)
        b = BiCriteriaPoint(1.0, 0.2)
        assert dominates(a, b)

    def test_trade_off_is_incomparable(self):
        a = BiCriteriaPoint(1.0, 0.9)
        b = BiCriteriaPoint(9.0, 0.1)
        assert not dominates(a, b)
        assert not dominates(b, a)

    def test_tolerance(self):
        a = BiCriteriaPoint(1.0, 0.1)
        b = BiCriteriaPoint(1.0 + 1e-13, 0.2)
        assert dominates(a, b, tolerance=1e-12)


class TestParetoFront:
    def test_simple_front(self):
        pts = [
            BiCriteriaPoint(1.0, 0.9),
            BiCriteriaPoint(2.0, 0.5),
            BiCriteriaPoint(3.0, 0.6),  # dominated by (2.0, 0.5)
            BiCriteriaPoint(4.0, 0.1),
        ]
        front = pareto_front(pts)
        assert [(p.latency, p.failure_probability) for p in front] == [
            (1.0, 0.9),
            (2.0, 0.5),
            (4.0, 0.1),
        ]

    def test_duplicates_collapse(self):
        pts = [BiCriteriaPoint(1.0, 0.5)] * 3
        assert len(pareto_front(pts)) == 1

    def test_empty(self):
        assert pareto_front([]) == []

    @given(_points)
    @settings(max_examples=100, deadline=None)
    def test_front_members_are_mutually_non_dominating(self, pts):
        front = pareto_front(pts)
        for i, a in enumerate(front):
            for b in front[i + 1 :]:
                assert not dominates(a, b)
                assert not dominates(b, a)

    @given(_points)
    @settings(max_examples=100, deadline=None)
    def test_every_point_dominated_or_equal_to_front(self, pts):
        front = pareto_front(pts)
        for p in pts:
            on_front = any(
                f.latency == p.latency
                and f.failure_probability == p.failure_probability
                for f in front
            )
            assert on_front or is_dominated(p, front)

    @given(_points)
    @settings(max_examples=100, deadline=None)
    def test_front_sorted_by_latency_and_fp_decreasing(self, pts):
        front = pareto_front(pts)
        lats = [p.latency for p in front]
        fps = [p.failure_probability for p in front]
        assert lats == sorted(lats)
        assert fps == sorted(fps, reverse=True)


class TestToleranceEdgeCases:
    """``tolerance > 0`` semantics (satellite coverage)."""

    def test_improvement_within_tolerance_does_not_dominate(self):
        a = BiCriteriaPoint(1.0, 0.1)
        b = BiCriteriaPoint(1.0, 0.1 + 1e-13)
        # b is worse, but only within tolerance: no strict improvement
        assert not dominates(a, b, tolerance=1e-12)
        assert not dominates(b, a, tolerance=1e-12)

    def test_tolerated_regression_on_one_axis(self):
        # a is an ulp slower but much more reliable: with tolerance it
        # counts as "no worse" on latency and strictly better on FP
        a = BiCriteriaPoint(1.0 + 1e-13, 0.1)
        b = BiCriteriaPoint(1.0, 0.9)
        assert dominates(a, b, tolerance=1e-12)
        assert not dominates(a, b, tolerance=0.0)

    def test_dominance_never_symmetric_under_tolerance(self):
        pts = [
            (BiCriteriaPoint(1.0, 0.5), BiCriteriaPoint(1.0 + 5e-13, 0.5)),
            (BiCriteriaPoint(2.0, 0.2), BiCriteriaPoint(2.1, 0.1)),
        ]
        for a, b in pts:
            for tol in (0.0, 1e-12, 0.05):
                assert not (
                    dominates(a, b, tolerance=tol)
                    and dominates(b, a, tolerance=tol)
                )

    def test_front_collapses_near_duplicate_fp(self):
        pts = [
            BiCriteriaPoint(1.0, 0.5),
            BiCriteriaPoint(2.0, 0.5 - 1e-13),  # not a real improvement
            BiCriteriaPoint(3.0, 0.1),
        ]
        front = pareto_front(pts, tolerance=1e-12)
        assert [(p.latency, p.failure_probability) for p in front] == [
            (1.0, 0.5),
            (3.0, 0.1),
        ]
        # zero tolerance keeps the ulp-level "improvement"
        assert len(pareto_front(pts)) == 3

    def test_front_with_large_tolerance_keeps_first_of_cluster(self):
        pts = [
            BiCriteriaPoint(1.0, 0.50),
            BiCriteriaPoint(2.0, 0.48),
            BiCriteriaPoint(3.0, 0.46),
            BiCriteriaPoint(4.0, 0.10),
        ]
        front = pareto_front(pts, tolerance=0.05)
        assert [(p.latency, p.failure_probability) for p in front] == [
            (1.0, 0.50),
            (4.0, 0.10),
        ]

    def test_is_dominated_with_tolerance(self):
        point = BiCriteriaPoint(2.0, 0.5 + 1e-13)
        others = [BiCriteriaPoint(2.0, 0.5)]
        assert not is_dominated(point, others, tolerance=1e-12)
        better = [BiCriteriaPoint(1.0, 0.4)]
        assert is_dominated(point, better, tolerance=1e-12)


class TestAttainment:
    def test_basic(self):
        front = [
            BiCriteriaPoint(1.0, 0.9),
            BiCriteriaPoint(2.0, 0.5),
            BiCriteriaPoint(4.0, 0.1),
        ]
        assert attainment(front, 0.5) is None
        assert attainment(front, 1.0) == 0.9
        assert attainment(front, 3.0) == 0.5
        assert attainment(front, 100.0) == 0.1

    def test_payload_preserved(self):
        p = BiCriteriaPoint(1.0, 0.5, payload="mapping")
        assert pareto_front([p])[0].payload == "mapping"
        assert p.as_tuple() == (1.0, 0.5)
