"""Unit tests for the latency / failure-probability metrics.

The paper's worked examples are asserted digit-for-digit here; the
hypothesis-based invariants live in ``test_metrics_properties.py``.
"""

import math

import pytest

from repro.core import (
    GeneralMapping,
    IntervalMapping,
    PipelineApplication,
    Platform,
    evaluate,
    failure_probability,
    general_mapping_latency,
    interval_reliability,
    latency,
    latency_breakdown,
    latency_heterogeneous,
    latency_uniform,
)
from repro.exceptions import InvalidMappingError, InvalidPlatformError


class TestFailureProbability:
    def test_single_processor(self):
        plat = Platform.fully_homogeneous(1, failure_probability=0.3)
        mapping = IntervalMapping.single_interval(1, {1})
        assert failure_probability(mapping, plat) == pytest.approx(0.3)

    def test_replication_multiplies(self):
        plat = Platform.fully_homogeneous(3, failure_probability=0.5)
        mapping = IntervalMapping.single_interval(1, {1, 2, 3})
        assert failure_probability(mapping, plat) == pytest.approx(0.125)

    def test_intervals_compose(self):
        plat = Platform.fully_homogeneous(2, failure_probability=0.5)
        mapping = IntervalMapping([(1, 1), (2, 2)], [{1}, {2}])
        # 1 - (1-0.5)(1-0.5)
        assert failure_probability(mapping, plat) == pytest.approx(0.75)

    def test_paper_figure5_values(self, fig5):
        fp_single = failure_probability(fig5.best_single_interval, fig5.platform)
        assert fp_single == pytest.approx(0.64, abs=1e-12)
        fp_two = failure_probability(fig5.two_interval_mapping, fig5.platform)
        assert fp_two == pytest.approx(fig5.claimed_two_interval_fp, rel=1e-12)
        assert fp_two < fig5.claimed_two_interval_fp_bound

    def test_zero_fp_processor_makes_interval_safe(self):
        plat = Platform.fully_homogeneous(2, failure_probabilities=[0.0, 0.9])
        mapping = IntervalMapping([(1, 1), (2, 2)], [{1}, {2}])
        assert failure_probability(mapping, plat) == pytest.approx(0.9)

    def test_certain_failure(self):
        plat = Platform.fully_homogeneous(1, failure_probability=1.0)
        mapping = IntervalMapping.single_interval(1, {1})
        assert failure_probability(mapping, plat) == 1.0

    def test_numerical_stability_tiny_products(self):
        # exp(-12)*exp(-7) must equal exp(-19) to ~1e-15 relative, not 1e-8
        plat = Platform.fully_homogeneous(
            2, failure_probabilities=[math.exp(-12), math.exp(-7)]
        )
        mapping = IntervalMapping.single_interval(1, {1, 2})
        assert failure_probability(mapping, plat) == pytest.approx(
            math.exp(-19), rel=1e-12
        )

    def test_interval_reliability(self):
        plat = Platform.fully_homogeneous(2, failure_probabilities=[0.2, 0.5])
        assert interval_reliability(plat, {1, 2}) == pytest.approx(0.9)

    def test_validation_with_application(self):
        plat = Platform.fully_homogeneous(2)
        app = PipelineApplication(works=(1,), volumes=(1, 1))
        mapping = IntervalMapping([(1, 1), (2, 2)], [{1}, {2}])  # 2 stages
        with pytest.raises(InvalidMappingError):
            failure_probability(mapping, plat, app)


class TestLatencyUniform:
    def test_single_interval_single_processor(self):
        app = PipelineApplication(works=(4, 6), volumes=(8, 4, 2))
        plat = Platform.fully_homogeneous(1, speed=2.0, bandwidth=4.0)
        mapping = IntervalMapping.single_interval(2, {1})
        # 8/4 + 10/2 + 2/4 = 2 + 5 + 0.5
        assert latency_uniform(mapping, app, plat) == pytest.approx(7.5)

    def test_replication_serialises_input(self):
        app = PipelineApplication(works=(4,), volumes=(8, 2))
        plat = Platform.fully_homogeneous(3, speed=2.0, bandwidth=4.0)
        k2 = IntervalMapping.single_interval(1, {1, 2})
        k3 = IntervalMapping.single_interval(1, {1, 2, 3})
        assert latency_uniform(k2, app, plat) == pytest.approx(2 * 2 + 2 + 0.5)
        assert latency_uniform(k3, app, plat) == pytest.approx(3 * 2 + 2 + 0.5)

    def test_slowest_replica_bounds_compute(self):
        app = PipelineApplication(works=(6,), volumes=(0, 0))
        plat = Platform.communication_homogeneous([3.0, 1.0], bandwidth=1.0)
        mapping = IntervalMapping.single_interval(1, {1, 2})
        assert latency_uniform(mapping, app, plat) == pytest.approx(6.0)

    def test_multi_interval_sums(self, fig5):
        lat = latency_uniform(
            fig5.two_interval_mapping, fig5.application, fig5.platform
        )
        assert lat == pytest.approx(22.0, abs=1e-12)

    def test_one_port_ablation(self):
        app = PipelineApplication(works=(4,), volumes=(8, 2))
        plat = Platform.fully_homogeneous(3, speed=2.0, bandwidth=4.0)
        mapping = IntervalMapping.single_interval(1, {1, 2, 3})
        serialized = latency_uniform(mapping, app, plat, one_port=True)
        multiport = latency_uniform(mapping, app, plat, one_port=False)
        assert multiport == pytest.approx(2 + 2 + 0.5)
        assert serialized - multiport == pytest.approx(2 * 2)

    def test_rejects_heterogeneous_platform(self, fig34):
        with pytest.raises(InvalidPlatformError):
            latency_uniform(
                fig34.split_mapping, fig34.application, fig34.platform
            )


class TestLatencyHeterogeneous:
    def test_paper_figure34(self, fig34):
        app, plat = fig34.application, fig34.platform
        for mapping in fig34.single_processor_mappings:
            assert latency_heterogeneous(mapping, app, plat) == pytest.approx(
                105.0
            )
        assert latency_heterogeneous(
            fig34.split_mapping, app, plat
        ) == pytest.approx(7.0)

    def test_dispatch(self, fig34, fig5):
        assert latency(
            fig34.split_mapping, fig34.application, fig34.platform
        ) == pytest.approx(7.0)
        assert latency(
            fig5.two_interval_mapping, fig5.application, fig5.platform
        ) == pytest.approx(22.0)

    def test_equals_uniform_on_uniform_platform(self, fig5):
        eq1 = latency_uniform(
            fig5.two_interval_mapping, fig5.application, fig5.platform
        )
        eq2 = latency_heterogeneous(
            fig5.two_interval_mapping, fig5.application, fig5.platform
        )
        assert eq1 == pytest.approx(eq2, rel=1e-12)

    def test_replicated_heterogeneous_fanout(self):
        # 1 stage on {P1,P2}, different in-links: input term is the sum
        app = PipelineApplication(works=(2,), volumes=(6, 3))
        plat = Platform.fully_heterogeneous(
            speeds=[1.0, 2.0],
            in_bandwidths=[3.0, 6.0],
            out_bandwidths=[1.0, 3.0],
            link_bandwidths=[[1.0, 1.0], [1.0, 1.0]],
        )
        mapping = IntervalMapping.single_interval(1, {1, 2})
        # input: 6/3 + 6/6 = 3; interval: max(2/1 + 3/1, 2/2 + 3/3) = 5
        assert latency_heterogeneous(mapping, app, plat) == pytest.approx(8.0)

    def test_one_port_ablation_heterogeneous(self):
        app = PipelineApplication(works=(2,), volumes=(6, 3))
        plat = Platform.fully_heterogeneous(
            speeds=[1.0, 2.0],
            in_bandwidths=[3.0, 6.0],
            out_bandwidths=[1.0, 3.0],
            link_bandwidths=[[1.0, 1.0], [1.0, 1.0]],
        )
        mapping = IntervalMapping.single_interval(1, {1, 2})
        # input becomes max(2, 1) = 2 instead of 3
        assert latency_heterogeneous(
            mapping, app, plat, one_port=False
        ) == pytest.approx(7.0)


class TestGeneralMappingLatency:
    def test_matches_interval_for_compatible(self, fig34):
        gm = GeneralMapping([1, 2])
        assert general_mapping_latency(
            gm, fig34.application, fig34.platform
        ) == pytest.approx(7.0)

    def test_revisiting_processor_skips_comm(self):
        app = PipelineApplication(works=(1, 1, 1), volumes=(1, 1, 1, 1))
        plat = Platform.communication_homogeneous([1.0, 1.0], bandwidth=1.0)
        gm = GeneralMapping([1, 2, 1])
        # 1 (in) + 1 + 1 (hop) + 1 + 1 (hop) + 1 + 1 (out) = 7
        assert general_mapping_latency(gm, app, plat) == pytest.approx(7.0)
        gm_same = GeneralMapping([1, 1, 1])
        # no hops: 1 + 3 + 1
        assert general_mapping_latency(gm_same, app, plat) == pytest.approx(5.0)

    def test_latency_dispatches_general(self):
        app = PipelineApplication(works=(1,), volumes=(1, 1))
        plat = Platform.fully_homogeneous(1, speed=1.0, bandwidth=1.0)
        assert latency(GeneralMapping([1]), app, plat) == pytest.approx(3.0)


class TestBreakdownAndEvaluate:
    def test_uniform_breakdown_totals(self, fig5):
        bd = latency_breakdown(
            fig5.two_interval_mapping, fig5.application, fig5.platform
        )
        assert bd.total == pytest.approx(22.0)
        assert len(bd.intervals) == 2
        assert bd.intervals[0].replication == 1
        assert bd.intervals[1].replication == 10
        assert bd.intervals[1].input_time == pytest.approx(10.0)

    def test_heterogeneous_breakdown_totals(self, fig34):
        bd = latency_breakdown(
            fig34.split_mapping, fig34.application, fig34.platform
        )
        assert bd.total == pytest.approx(7.0)
        assert bd.final_output_time == 0.0
        assert bd.intervals[0].input_time == pytest.approx(1.0)

    def test_breakdown_matches_latency_ablation(self, fig5):
        bd = latency_breakdown(
            fig5.two_interval_mapping,
            fig5.application,
            fig5.platform,
            one_port=False,
        )
        direct = latency(
            fig5.two_interval_mapping,
            fig5.application,
            fig5.platform,
            one_port=False,
        )
        assert bd.total == pytest.approx(direct)

    def test_evaluate_bundles_both(self, fig5):
        ev = evaluate(
            fig5.two_interval_mapping, fig5.application, fig5.platform
        )
        assert ev.latency == pytest.approx(22.0)
        assert ev.failure_probability == pytest.approx(
            fig5.claimed_two_interval_fp
        )
        assert ev.mapping is fig5.two_interval_mapping

    def test_evaluation_dominance(self):
        from repro.core import MappingEvaluation

        a = MappingEvaluation(1.0, 0.5)
        b = MappingEvaluation(2.0, 0.5)
        c = MappingEvaluation(1.0, 0.5)
        assert a.dominates(b)
        assert not b.dominates(a)
        assert not a.dominates(c)  # equal: no strict improvement
