"""Unit tests for the pipeline application model."""

import pytest

from repro.core import PipelineApplication, Stage
from repro.exceptions import InvalidApplicationError


class TestStage:
    def test_basic_fields(self):
        s = Stage(index=2, work=5.0, input_size=3.0, output_size=1.0, name="dct")
        assert s.index == 2
        assert s.work == 5.0
        assert s.label == "dct"

    def test_default_label(self):
        assert Stage(index=3, work=1, input_size=1, output_size=1).label == "S3"

    def test_rejects_bad_index(self):
        with pytest.raises(InvalidApplicationError):
            Stage(index=0, work=1, input_size=1, output_size=1)

    def test_rejects_negative_work(self):
        with pytest.raises(InvalidApplicationError):
            Stage(index=1, work=-1, input_size=1, output_size=1)

    def test_rejects_negative_volumes(self):
        with pytest.raises(InvalidApplicationError):
            Stage(index=1, work=1, input_size=-1, output_size=1)
        with pytest.raises(InvalidApplicationError):
            Stage(index=1, work=1, input_size=1, output_size=-2)


class TestPipelineApplication:
    def test_basic_accessors(self):
        app = PipelineApplication(works=(2, 3), volumes=(10, 5, 1))
        assert app.num_stages == 2
        assert app.work(1) == 2.0
        assert app.work(2) == 3.0
        assert app.volume(0) == 10.0
        assert app.volume(2) == 1.0
        assert app.input_size == 10.0
        assert app.output_size == 1.0
        assert app.total_work == 5.0

    def test_interval_work(self):
        app = PipelineApplication(works=(1, 2, 3, 4), volumes=(0, 0, 0, 0, 0))
        assert app.interval_work(1, 4) == 10.0
        assert app.interval_work(2, 3) == 5.0
        assert app.interval_work(3, 3) == 3.0

    def test_interval_work_rejects_empty(self):
        app = PipelineApplication(works=(1, 2), volumes=(0, 0, 0))
        with pytest.raises(IndexError):
            app.interval_work(2, 1)

    def test_stage_materialisation(self):
        app = PipelineApplication(
            works=(2, 3), volumes=(10, 5, 1), stage_names=("a", "b")
        )
        s2 = app.stage(2)
        assert s2.input_size == 5.0
        assert s2.output_size == 1.0
        assert s2.name == "b"
        assert [s.index for s in app.stages()] == [1, 2]

    def test_stage_index_bounds(self):
        app = PipelineApplication(works=(1,), volumes=(1, 1))
        with pytest.raises(IndexError):
            app.work(0)
        with pytest.raises(IndexError):
            app.work(2)
        with pytest.raises(IndexError):
            app.volume(3)

    def test_rejects_empty_pipeline(self):
        with pytest.raises(InvalidApplicationError):
            PipelineApplication(works=(), volumes=(1,))

    def test_rejects_volume_count_mismatch(self):
        with pytest.raises(InvalidApplicationError):
            PipelineApplication(works=(1, 2), volumes=(1, 2))

    def test_rejects_negative_cost(self):
        with pytest.raises(InvalidApplicationError):
            PipelineApplication(works=(-1,), volumes=(1, 1))
        with pytest.raises(InvalidApplicationError):
            PipelineApplication(works=(1,), volumes=(1, -1))

    def test_rejects_name_count_mismatch(self):
        with pytest.raises(InvalidApplicationError):
            PipelineApplication(works=(1,), volumes=(1, 1), stage_names=("a", "b"))

    def test_zero_volumes_allowed(self):
        # the paper's Figure 5 instance has delta_2 = 0
        app = PipelineApplication(works=(1, 100), volumes=(10, 1, 0))
        assert app.output_size == 0.0

    def test_uniform_constructor(self):
        app = PipelineApplication.uniform(4, work=2.0, volume=3.0)
        assert app.num_stages == 4
        assert set(app.works) == {2.0}
        assert set(app.volumes) == {3.0}

    def test_uniform_rejects_zero_stages(self):
        with pytest.raises(InvalidApplicationError):
            PipelineApplication.uniform(0)

    def test_from_stages_roundtrip(self):
        app = PipelineApplication(
            works=(2, 3, 4), volumes=(9, 8, 7, 6), stage_names=("x", "y", "z")
        )
        rebuilt = PipelineApplication.from_stages(
            list(app.stages()), input_size=app.input_size
        )
        assert rebuilt == app

    def test_from_stages_rejects_gap(self):
        s1 = Stage(index=1, work=1, input_size=1, output_size=2)
        s3 = Stage(index=3, work=1, input_size=2, output_size=3)
        with pytest.raises(InvalidApplicationError):
            PipelineApplication.from_stages([s1, s3], input_size=1)

    def test_from_stages_rejects_volume_mismatch(self):
        s1 = Stage(index=1, work=1, input_size=1, output_size=2)
        s2 = Stage(index=2, work=1, input_size=99, output_size=3)
        with pytest.raises(InvalidApplicationError):
            PipelineApplication.from_stages([s1, s2], input_size=1)

    def test_from_stages_rejects_bad_input_size(self):
        s1 = Stage(index=1, work=1, input_size=1, output_size=2)
        with pytest.raises(InvalidApplicationError):
            PipelineApplication.from_stages([s1], input_size=5)

    def test_scaled(self):
        app = PipelineApplication(works=(2, 4), volumes=(1, 2, 3))
        scaled = app.scaled(work_factor=2.0, volume_factor=0.5)
        assert scaled.works == (4.0, 8.0)
        assert scaled.volumes == (0.5, 1.0, 1.5)

    def test_scaled_rejects_negative(self):
        app = PipelineApplication(works=(1,), volumes=(1, 1))
        with pytest.raises(InvalidApplicationError):
            app.scaled(work_factor=-1)

    def test_str_contains_stages(self):
        app = PipelineApplication(works=(1, 2), volumes=(3, 4, 5))
        text = str(app)
        assert "S1" in text and "S2" in text

    def test_equality_and_hash(self):
        a = PipelineApplication(works=(1, 2), volumes=(3, 4, 5))
        b = PipelineApplication(works=(1, 2), volumes=(3, 4, 5))
        assert a == b
        assert hash(a) == hash(b)
