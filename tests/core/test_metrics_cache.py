"""The incremental EvaluationCache must agree *exactly* with the plain
metric functions — on arbitrary mappings, and along the neighbourhood
walks that local search and annealing actually perform."""

import math

import pytest
from hypothesis import given, settings

from repro.core import (
    EvaluationCache,
    IntervalMapping,
    PipelineApplication,
    Platform,
    evaluate,
    failure_probability,
    latency,
)
from repro.core.enumeration import enumerate_interval_mappings
from repro.exceptions import InvalidMappingError

from tests.strategies import (
    app_platform_mapping,
    comm_homogeneous_platforms,
    fully_heterogeneous_platforms,
    mapping_walks,
)


@given(app_platform_mapping())
@settings(max_examples=150, deadline=None)
def test_cache_matches_evaluate_exactly(triple):
    """Bit-for-bit agreement on a cold cache, any platform class."""
    app, platform, mapping = triple
    cache = EvaluationCache(app, platform)
    ev = evaluate(mapping, app, platform)
    cv = cache.evaluate(mapping)
    assert cv.latency == ev.latency
    assert cv.failure_probability == ev.failure_probability


@given(app_platform_mapping())
@settings(max_examples=100, deadline=None)
def test_warm_cache_matches_evaluate_exactly(triple):
    """A second (fully cached) evaluation returns the same bits."""
    app, platform, mapping = triple
    cache = EvaluationCache(app, platform)
    first = cache.evaluate(mapping)
    hits_before = cache.hits
    second = cache.evaluate(mapping)
    assert cache.hits > hits_before
    assert second.latency == first.latency == latency(mapping, app, platform)
    assert (
        second.failure_probability
        == first.failure_probability
        == failure_probability(mapping, platform)
    )


@given(mapping_walks())
@settings(max_examples=100, deadline=None)
def test_cache_exact_along_neighborhood_walks(walk_triple):
    """Local-search/annealing move sequences never drift from the truth."""
    app, platform, walk = walk_triple
    cache = EvaluationCache(app, platform)
    for mapping in walk:
        assert cache.latency(mapping) == latency(mapping, app, platform)
        assert cache.failure_probability(mapping) == failure_probability(
            mapping, platform
        )


@given(mapping_walks(platform_strategy=fully_heterogeneous_platforms()))
@settings(max_examples=75, deadline=None)
def test_cache_exact_on_heterogeneous_walks(walk_triple):
    """Eq. (2) terms depend on the successor allocation — still exact."""
    app, platform, walk = walk_triple
    cache = EvaluationCache(app, platform)
    for mapping in walk:
        assert cache.latency(mapping) == latency(mapping, app, platform)


@given(
    app_platform_mapping(
        comm_homogeneous_platforms(min_processors=2, max_processors=5)
    )
)
@settings(max_examples=75, deadline=None)
def test_cache_respects_one_port_flag(triple):
    app, platform, mapping = triple
    cache = EvaluationCache(app, platform, one_port=False)
    assert cache.latency(mapping) == latency(
        mapping, app, platform, one_port=False
    )


def test_cache_sweep_matches_full_evaluation_exactly():
    """Deterministic end-to-end check over a whole enumeration sweep."""
    app = PipelineApplication(works=(4.0, 6.0, 2.0, 1.0), volumes=(8.0, 4.0, 4.0, 2.0, 1.0))
    platform = Platform.communication_homogeneous(
        [3.0, 2.0, 1.0, 2.5],
        bandwidth=4.0,
        failure_probabilities=[0.4, 0.1, 0.3, 0.2],
    )
    cache = EvaluationCache(app, platform)
    count = 0
    for mapping in enumerate_interval_mappings(4, 4):
        cv = cache.evaluate(mapping)
        assert cv.latency == latency(mapping, app, platform)
        assert cv.failure_probability == failure_probability(mapping, platform)
        count += 1
    assert count > 100
    stats = cache.stats
    # the whole point: terms are shared massively across the sweep
    assert stats["hits"] > 5 * stats["misses"]


def test_cache_check_flag_validates_compatibility():
    app = PipelineApplication(works=(1.0, 1.0), volumes=(1.0, 1.0, 1.0))
    platform = Platform.fully_homogeneous(2, failure_probability=0.1)
    cache = EvaluationCache(app, platform, check=True)
    bad_stage_count = IntervalMapping.single_interval(3, {1})
    with pytest.raises(InvalidMappingError):
        cache.latency(bad_stage_count)
    bad_processor = IntervalMapping.single_interval(2, {5})
    with pytest.raises(InvalidMappingError):
        cache.failure_probability(bad_processor)


def test_cache_certain_failure_interval():
    """An allocation of all-certain-failure processors yields FP = 1."""
    app = PipelineApplication(works=(1.0, 1.0), volumes=(1.0, 1.0, 1.0))
    platform = Platform.fully_homogeneous(
        2, failure_probability=1.0, speed=1.0, bandwidth=1.0
    )
    mapping = IntervalMapping.single_interval(2, {1, 2})
    cache = EvaluationCache(app, platform)
    assert cache.failure_probability(mapping) == 1.0
    assert cache.failure_probability(mapping) == failure_probability(
        mapping, platform
    )


def test_trusted_enumeration_equals_public_constructor():
    """The fast-path mappings are indistinguishable from validated ones."""
    for fast in enumerate_interval_mappings(3, 3):
        rebuilt = IntervalMapping(fast.intervals, fast.allocations)
        assert fast == rebuilt
        assert fast.num_intervals == rebuilt.num_intervals
        assert fast.used_processors == rebuilt.used_processors


def test_cache_stats_shape():
    app = PipelineApplication(works=(1.0,), volumes=(1.0, 1.0))
    platform = Platform.fully_homogeneous(1, failure_probability=0.5)
    cache = EvaluationCache(app, platform)
    assert cache.stats == {"hits": 0, "misses": 0, "entries": 0}
    cache.evaluate(IntervalMapping.single_interval(1, {1}))
    assert cache.stats["misses"] > 0
    assert math.isfinite(cache.stats["hits"])


class TestSharedTerms:
    """Snapshot export / cross-cache hand-off (the sweep-engine cache)."""

    def _instance(self):
        from tests.helpers import make_instance

        return make_instance("comm-homogeneous", 4, 4, 13)

    def _het_instance(self):
        from tests.helpers import make_instance

        return make_instance("fully-heterogeneous", 4, 4, 13)

    def _pool(self, app, plat):
        from repro.algorithms.heuristics import single_interval_mappings

        return single_interval_mappings(app, plat)

    @pytest.mark.parametrize("kind", ["uniform", "het"])
    def test_preloaded_cache_is_bit_identical_and_all_hits(self, kind):
        app, plat = self._instance() if kind == "uniform" else self._het_instance()
        pool = self._pool(app, plat)
        warm_cache = EvaluationCache(app, plat)
        expected = [warm_cache.evaluate(m) for m in pool]
        snapshot = warm_cache.export_terms()

        cold = EvaluationCache(app, plat)
        cold.preload(snapshot)
        assert cold.misses == 0
        for m, exp in zip(pool, expected):
            got = cold.evaluate(m)
            assert got.latency == exp.latency
            assert got.failure_probability == exp.failure_probability
        assert cold.misses == 0  # every term came from the snapshot

    def test_export_terms_returns_copies(self):
        app, plat = self._instance()
        cache = EvaluationCache(app, plat)
        cache.evaluate(self._pool(app, plat)[0])
        snapshot = cache.export_terms()
        snapshot["rel"].clear()
        assert cache._rel_terms  # the cache's own dicts are untouched

    def test_shared_registry_hands_terms_across_caches(self):
        from repro.core import metrics

        app, plat = self._instance()
        pool = self._pool(app, plat)
        with metrics.shared_cache_terms(app, plat) as shared:
            first = EvaluationCache(app, plat)
            assert first._lat_terms is shared["lat"]
            for m in pool:
                first.evaluate(m)
            second = EvaluationCache(app, plat)
            second.evaluate(pool[0])
            assert second.misses == 0  # terms flowed through the registry
        # the context removed the entry: later caches start cold again
        assert not metrics._SHARED_TERMS
        third = EvaluationCache(app, plat)
        third.evaluate(pool[0])
        assert third.misses > 0

    def test_shared_registry_keyed_by_exact_instance(self):
        from repro.core import metrics
        from tests.helpers import make_instance

        app, plat = self._instance()
        other_app, other_plat = make_instance("comm-homogeneous", 4, 4, 14)
        with metrics.shared_cache_terms(app, plat):
            warm = EvaluationCache(app, plat)
            for m in self._pool(app, plat):
                warm.evaluate(m)
            foreign = EvaluationCache(other_app, other_plat)
            foreign.evaluate(self._pool(other_app, other_plat)[0])
            assert foreign.misses > 0  # different instance: no sharing

    def test_shared_registry_keyed_by_one_port(self):
        from repro.core import metrics

        app, plat = self._instance()
        pool = self._pool(app, plat)
        with metrics.shared_cache_terms(app, plat, one_port=True):
            warm = EvaluationCache(app, plat, one_port=True)
            for m in pool:
                warm.evaluate(m)
            multi_port = EvaluationCache(app, plat, one_port=False)
            multi_port.evaluate(pool[-1])
            assert multi_port.misses > 0  # one_port=False terms differ

    def test_install_and_export_round_trip(self):
        from repro.core import metrics

        app, plat = self._instance()
        pool = self._pool(app, plat)
        cache = EvaluationCache(app, plat)
        for m in pool:
            cache.evaluate(m)
        snapshot = cache.export_terms()
        assert metrics.export_shared_terms(app, plat) is None
        with metrics.shared_cache_terms(app, plat, terms=snapshot):
            exported = metrics.export_shared_terms(app, plat)
            assert exported is not None
            assert exported["rel"] == snapshot["rel"]
            seeded = EvaluationCache(app, plat)
            seeded.evaluate(pool[0])
            assert seeded.misses == 0
        metrics.clear_shared_terms()
