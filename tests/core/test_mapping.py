"""Unit tests for interval / one-to-one / general mappings."""

import pytest

from repro.core import GeneralMapping, IntervalMapping, StageInterval
from repro.exceptions import InvalidMappingError


class TestStageInterval:
    def test_basics(self):
        iv = StageInterval(2, 4)
        assert iv.length == 3
        assert 2 in iv and 4 in iv and 5 not in iv
        assert list(iv.stages()) == [2, 3, 4]

    def test_singleton(self):
        iv = StageInterval(3, 3)
        assert iv.length == 1

    def test_rejects_empty(self):
        with pytest.raises(InvalidMappingError):
            StageInterval(3, 2)

    def test_rejects_bad_start(self):
        with pytest.raises(InvalidMappingError):
            StageInterval(0, 2)


class TestIntervalMapping:
    def test_structure(self):
        mapping = IntervalMapping([(1, 2), (3, 3)], [{1, 2}, {3}])
        assert mapping.num_intervals == 2
        assert mapping.num_stages == 3
        assert mapping.replication_counts == (2, 1)
        assert mapping.used_processors == frozenset({1, 2, 3})
        assert not mapping.is_one_to_one
        assert not mapping.is_single_interval
        assert mapping.uses_replication

    def test_tuple_interval_coercion(self):
        mapping = IntervalMapping([(1, 1)], [{5}])
        assert mapping.intervals[0] == StageInterval(1, 1)

    def test_stage_lookup(self):
        mapping = IntervalMapping([(1, 2), (3, 4)], [{1}, {2}])
        assert mapping.interval_index_of_stage(2) == 0
        assert mapping.interval_index_of_stage(3) == 1
        assert mapping.allocation_of_stage(4) == frozenset({2})
        with pytest.raises(IndexError):
            mapping.interval_index_of_stage(5)

    def test_rejects_gap(self):
        with pytest.raises(InvalidMappingError):
            IntervalMapping([(1, 1), (3, 3)], [{1}, {2}])

    def test_rejects_overlap(self):
        with pytest.raises(InvalidMappingError):
            IntervalMapping([(1, 2), (2, 3)], [{1}, {2}])

    def test_rejects_not_starting_at_one(self):
        with pytest.raises(InvalidMappingError):
            IntervalMapping([(2, 3)], [{1}])

    def test_rejects_empty_allocation(self):
        with pytest.raises(InvalidMappingError):
            IntervalMapping([(1, 1)], [set()])

    def test_rejects_shared_processor(self):
        with pytest.raises(InvalidMappingError):
            IntervalMapping([(1, 1), (2, 2)], [{1}, {1}])

    def test_rejects_count_mismatch(self):
        with pytest.raises(InvalidMappingError):
            IntervalMapping([(1, 1)], [{1}, {2}])

    def test_rejects_no_intervals(self):
        with pytest.raises(InvalidMappingError):
            IntervalMapping([], [])

    def test_single_interval_constructor(self):
        mapping = IntervalMapping.single_interval(4, {2, 5})
        assert mapping.is_single_interval
        assert mapping.num_stages == 4
        assert mapping.allocations[0] == frozenset({2, 5})

    def test_one_to_one_constructor(self):
        mapping = IntervalMapping.one_to_one([3, 1, 2])
        assert mapping.is_one_to_one
        assert mapping.num_intervals == 3
        assert [next(iter(a)) for a in mapping.allocations] == [3, 1, 2]

    def test_one_to_one_rejects_duplicates(self):
        with pytest.raises(InvalidMappingError):
            IntervalMapping.one_to_one([1, 1])

    def test_from_boundaries(self):
        mapping = IntervalMapping.from_boundaries(5, [2, 5], [{1}, {2}])
        assert mapping.intervals == (StageInterval(1, 2), StageInterval(3, 5))

    def test_from_boundaries_rejects_wrong_end(self):
        with pytest.raises(InvalidMappingError):
            IntervalMapping.from_boundaries(5, [2, 4], [{1}, {2}])

    def test_items_and_str(self):
        mapping = IntervalMapping([(1, 2), (3, 3)], [{2, 1}, {3}])
        pairs = list(mapping.items())
        assert pairs[0][1] == frozenset({1, 2})
        text = str(mapping)
        assert "P1" in text and "P3" in text

    def test_immutability(self):
        mapping = IntervalMapping.single_interval(2, {1})
        with pytest.raises(AttributeError):
            mapping.intervals = ()  # type: ignore[misc]

    def test_equality(self):
        a = IntervalMapping([(1, 2)], [{1, 2}])
        b = IntervalMapping([(1, 2)], [{2, 1}])
        assert a == b


class TestGeneralMapping:
    def test_basics(self):
        gm = GeneralMapping([1, 2, 1])
        assert gm.num_stages == 3
        assert gm.used_processors == frozenset({1, 2})
        assert gm.processor_of_stage(3) == 1

    def test_stage_bounds(self):
        gm = GeneralMapping([1])
        with pytest.raises(IndexError):
            gm.processor_of_stage(0)
        with pytest.raises(IndexError):
            gm.processor_of_stage(2)

    def test_rejects_empty(self):
        with pytest.raises(InvalidMappingError):
            GeneralMapping([])

    def test_runs(self):
        gm = GeneralMapping([1, 1, 2, 1])
        runs = gm.runs()
        assert [(iv.start, iv.end, p) for iv, p in runs] == [
            (1, 2, 1),
            (3, 3, 2),
            (4, 4, 1),
        ]
        assert not gm.is_interval_compatible

    def test_interval_compatible_conversion(self):
        gm = GeneralMapping([3, 3, 1, 2, 2])
        assert gm.is_interval_compatible
        im = gm.to_interval_mapping()
        assert im.num_intervals == 3
        assert im.allocations == (
            frozenset({3}),
            frozenset({1}),
            frozenset({2}),
        )

    def test_incompatible_conversion_raises(self):
        gm = GeneralMapping([1, 2, 1])
        with pytest.raises(InvalidMappingError):
            gm.to_interval_mapping()

    def test_single_stage(self):
        gm = GeneralMapping([7])
        assert gm.is_interval_compatible
        assert gm.to_interval_mapping().used_processors == frozenset({7})
