"""Kernel ↔ scalar equivalence and the bulk ``backend`` knob.

The pure-Python forms (``*_py``) of the numba kernels run on every
install, so the fused per-row logic is pinned against the scalar
metrics even when numba is absent; the jit legs (skipped without
numba) compile the real kernels and assert the same contract, plus the
:func:`~repro.core.metrics_bulk.resolve_backend` resolution rules.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BULK_RELATIVE_TOLERANCE,
    BulkEvaluator,
    EvaluationCache,
    IntervalMapping,
    MappingBlock,
    Platform,
    StageInterval,
)
from repro.core import metrics_bulk, metrics_kernels
from repro.core.enumeration import enumerate_interval_mappings
from repro.exceptions import SolverError

from tests.helpers import make_instance
from tests.strategies import (
    applications,
    comm_homogeneous_platforms,
    fully_heterogeneous_platforms,
    interval_mappings,
    platforms,
)

np = pytest.importorskip("numpy", exc_type=ImportError)

needs_numba = pytest.mark.skipif(
    not metrics_kernels.HAS_NUMBA, reason="numba not installed"
)


def _py_latencies(evaluator, block):
    """Run the pure-Python latency kernel on an evaluator's arrays."""
    ends = np.ascontiguousarray(block.ends)
    masks = np.ascontiguousarray(block.masks)
    out = np.empty(len(block))
    if evaluator._uniform:
        metrics_kernels.uniform_latency_py(
            ends,
            masks,
            evaluator._work_prefix,
            evaluator._volumes,
            evaluator._speeds,
            float(evaluator._bandwidth),
            float(evaluator._final_term),
            evaluator.one_port,
            out,
        )
    else:
        metrics_kernels.heterogeneous_latency_py(
            ends,
            masks,
            evaluator._work_prefix,
            evaluator._volumes,
            evaluator._speeds,
            evaluator._links,
            evaluator._in_bw,
            evaluator._out_bw,
            float(evaluator.application.input_size),
            evaluator.one_port,
            out,
        )
    return out


def _py_failures(evaluator, block):
    out = np.empty(len(block))
    metrics_kernels.failure_py(
        np.ascontiguousarray(block.masks), evaluator._fps, out
    )
    return out


def assert_kernels_match_scalar(app, plat, mappings, *, one_port=True):
    """Feed mappings through the py kernels and compare per row."""
    block = MappingBlock.from_mappings(mappings, app.num_stages, plat.size)
    evaluator = BulkEvaluator(app, plat, one_port=one_port, backend="numpy")
    lats = _py_latencies(evaluator, block)
    fps = _py_failures(evaluator, block)
    cache = EvaluationCache(app, plat, one_port=one_port)
    for i, mapping in enumerate(mappings):
        scalar = cache.evaluate(mapping)
        assert math.isclose(
            lats[i], scalar.latency, rel_tol=BULK_RELATIVE_TOLERANCE
        ), (mapping, lats[i], scalar.latency)
        assert math.isclose(
            fps[i],
            scalar.failure_probability,
            rel_tol=BULK_RELATIVE_TOLERANCE,
            abs_tol=1e-300,
        ), (mapping, fps[i], scalar.failure_probability)


@st.composite
def app_platform_mappings(draw, platform_strategy=None, max_mappings=8):
    """A consistent (application, platform, [mappings]) triple."""
    app = draw(applications(max_stages=4))
    if platform_strategy is None:
        platform_strategy = platforms(min_processors=1, max_processors=5)
    plat = draw(platform_strategy)
    count = draw(st.integers(min_value=1, max_value=max_mappings))
    mappings = [
        draw(interval_mappings(app.num_stages, plat.size))
        for _ in range(count)
    ]
    return app, plat, mappings


class TestPyKernelsMatchScalar:
    """The reference (undecorated) kernel forms agree with the scalar path."""

    @given(app_platform_mappings())
    @settings(max_examples=100, deadline=None)
    def test_any_platform_class(self, triple):
        app, plat, mappings = triple
        assert_kernels_match_scalar(app, plat, mappings)

    @given(
        app_platform_mappings(
            platform_strategy=comm_homogeneous_platforms(
                min_processors=1, max_processors=6
            )
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_uniform_links(self, triple):
        app, plat, mappings = triple
        assert_kernels_match_scalar(app, plat, mappings)

    @given(
        app_platform_mappings(
            platform_strategy=fully_heterogeneous_platforms(
                min_processors=1, max_processors=5
            )
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_heterogeneous_links(self, triple):
        app, plat, mappings = triple
        assert_kernels_match_scalar(app, plat, mappings)

    @given(app_platform_mappings())
    @settings(max_examples=40, deadline=None)
    def test_multi_port_ablation(self, triple):
        app, plat, mappings = triple
        assert_kernels_match_scalar(app, plat, mappings, one_port=False)

    @pytest.mark.parametrize(
        "kind", ["comm-homogeneous", "fully-heterogeneous"]
    )
    @pytest.mark.parametrize("one_port", [True, False])
    def test_whole_space_small_instances(self, kind, one_port):
        app, plat = make_instance(kind, n=4, m=4, seed=2)
        mappings = list(enumerate_interval_mappings(4, 4))
        assert_kernels_match_scalar(app, plat, mappings, one_port=one_port)

    def test_wide_platform_past_table_limit(self):
        """High-bit masks (m beyond the table limit) decode correctly."""
        m = metrics_bulk.MASK_TABLE_LIMIT + 1
        rng = random.Random(11)
        plat = Platform.communication_homogeneous(
            [rng.uniform(1.0, 10.0) for _ in range(m)],
            bandwidth=4.0,
            failure_probabilities=[rng.uniform(0.0, 0.5) for _ in range(m)],
        )
        app, _ = make_instance("comm-homogeneous", n=3, m=2, seed=11)
        mappings = [
            IntervalMapping.single_interval(3, {m}),
            IntervalMapping.single_interval(3, {1, m // 2, m}),
            IntervalMapping(
                [StageInterval(1, 1), StageInterval(2, 3)],
                [{m}, {2, m - 1}],
            ),
        ]
        assert_kernels_match_scalar(app, plat, mappings)


class TestResolveBackend:
    """The three-state ``backend`` knob mirrors ``resolve_use_bulk``."""

    def test_auto_tracks_numba_presence(self):
        expected = "jit" if metrics_bulk.HAS_NUMBA else "numpy"
        assert metrics_bulk.resolve_backend(None) == expected
        assert metrics_bulk.resolve_backend("auto") == expected

    def test_auto_without_numba_degrades(self, monkeypatch):
        monkeypatch.setattr(metrics_bulk, "HAS_NUMBA", False)
        assert metrics_bulk.resolve_backend(None) == "numpy"
        assert metrics_bulk.resolve_backend("auto") == "numpy"

    def test_auto_with_numba_compiles(self, monkeypatch):
        monkeypatch.setattr(metrics_bulk, "HAS_NUMBA", True)
        assert metrics_bulk.resolve_backend(None) == "jit"
        assert metrics_bulk.resolve_backend("auto") == "jit"

    def test_explicit_jit_without_numba_errors(self, monkeypatch):
        monkeypatch.setattr(metrics_bulk, "HAS_NUMBA", False)
        with pytest.raises(SolverError, match="requires numba"):
            metrics_bulk.resolve_backend("jit")

    def test_numpy_never_depends_on_numba(self, monkeypatch):
        for present in (True, False):
            monkeypatch.setattr(metrics_bulk, "HAS_NUMBA", present)
            assert metrics_bulk.resolve_backend("numpy") == "numpy"

    def test_unknown_backend_rejected(self):
        with pytest.raises(SolverError, match="unknown bulk backend"):
            metrics_bulk.resolve_backend("cuda")


class TestEvaluatorBackendKnob:
    def test_default_resolves_like_auto(self):
        app, plat = make_instance("comm-homogeneous", 3, 3, 0)
        evaluator = BulkEvaluator(app, plat)
        expected = "jit" if metrics_bulk.HAS_NUMBA else "numpy"
        assert evaluator.backend == expected

    def test_explicit_numpy_matches_default_results(self):
        app, plat = make_instance("fully-heterogeneous", 4, 3, 4)
        mappings = list(enumerate_interval_mappings(4, 3))
        block = MappingBlock.from_mappings(mappings, 4, 3)
        explicit = BulkEvaluator(app, plat, backend="numpy")
        auto = BulkEvaluator(app, plat)
        lats, fps = explicit.evaluate_block(block)
        ref_lats, ref_fps = auto.evaluate_block(block)
        assert np.allclose(lats, ref_lats, rtol=BULK_RELATIVE_TOLERANCE)
        assert np.allclose(
            fps, ref_fps, rtol=BULK_RELATIVE_TOLERANCE, atol=1e-300
        )

    def test_jit_without_numba_errors(self, monkeypatch):
        monkeypatch.setattr(metrics_bulk, "HAS_NUMBA", False)
        app, plat = make_instance("comm-homogeneous", 3, 3, 0)
        with pytest.raises(SolverError, match="requires numba"):
            BulkEvaluator(app, plat, backend="jit")

    def test_unknown_backend_rejected_at_construction(self):
        app, plat = make_instance("comm-homogeneous", 3, 3, 0)
        with pytest.raises(SolverError, match="unknown bulk backend"):
            BulkEvaluator(app, plat, backend="fortran")


class TestWarmup:
    def test_warmup_reports_availability(self):
        assert metrics_kernels.warmup() is metrics_kernels.HAS_NUMBA

    def test_warmup_noop_without_numba(self, monkeypatch):
        monkeypatch.setattr(metrics_kernels, "HAS_NUMBA", False)
        assert metrics_kernels.warmup() is False


@needs_numba
class TestJitBackend:
    """Compiled-kernel legs — these run only where numba is installed."""

    @pytest.mark.parametrize(
        "kind", ["comm-homogeneous", "fully-heterogeneous"]
    )
    @pytest.mark.parametrize("one_port", [True, False])
    def test_jit_matches_numpy_and_scalar(self, kind, one_port):
        app, plat = make_instance(kind, n=4, m=4, seed=6)
        mappings = list(enumerate_interval_mappings(4, 4))
        block = MappingBlock.from_mappings(mappings, 4, 4)
        jit = BulkEvaluator(app, plat, one_port=one_port, backend="jit")
        ref = BulkEvaluator(app, plat, one_port=one_port, backend="numpy")
        jit_lats, jit_fps = jit.evaluate_block(block)
        ref_lats, ref_fps = ref.evaluate_block(block)
        assert np.allclose(
            jit_lats, ref_lats, rtol=BULK_RELATIVE_TOLERANCE
        )
        assert np.allclose(
            jit_fps, ref_fps, rtol=BULK_RELATIVE_TOLERANCE, atol=1e-300
        )
        cache = EvaluationCache(app, plat, one_port=one_port)
        for i, mapping in enumerate(mappings):
            scalar = cache.evaluate(mapping)
            assert math.isclose(
                jit_lats[i],
                scalar.latency,
                rel_tol=BULK_RELATIVE_TOLERANCE,
            )
            assert math.isclose(
                jit_fps[i],
                scalar.failure_probability,
                rel_tol=BULK_RELATIVE_TOLERANCE,
                abs_tol=1e-300,
            )

    def test_compiled_kernels_match_py_forms(self):
        app, plat = make_instance("fully-heterogeneous", 4, 4, 9)
        mappings = list(enumerate_interval_mappings(4, 4))
        block = MappingBlock.from_mappings(mappings, 4, 4)
        evaluator = BulkEvaluator(app, plat, backend="jit")
        compiled_lats = evaluator.latencies(block)
        compiled_fps = evaluator.failure_probabilities(block)
        assert np.array_equal(compiled_lats, _py_latencies(evaluator, block))
        assert np.array_equal(compiled_fps, _py_failures(evaluator, block))

    def test_wide_platform_past_table_limit(self):
        m = metrics_bulk.MASK_TABLE_LIMIT + 1
        rng = random.Random(3)
        plat = Platform.communication_homogeneous(
            [rng.uniform(1.0, 10.0) for _ in range(m)],
            bandwidth=4.0,
            failure_probabilities=[rng.uniform(0.0, 0.5) for _ in range(m)],
        )
        app, _ = make_instance("comm-homogeneous", n=3, m=2, seed=3)
        mappings = [
            IntervalMapping.single_interval(3, {m}),
            IntervalMapping.single_interval(3, {1, m // 2, m}),
        ]
        block = MappingBlock.from_mappings(mappings, 3, m)
        jit = BulkEvaluator(app, plat, backend="jit")
        ref = BulkEvaluator(app, plat, backend="numpy")
        jit_lats, jit_fps = jit.evaluate_block(block)
        ref_lats, ref_fps = ref.evaluate_block(block)
        assert np.allclose(
            jit_lats, ref_lats, rtol=BULK_RELATIVE_TOLERANCE
        )
        assert np.allclose(
            jit_fps, ref_fps, rtol=BULK_RELATIVE_TOLERANCE, atol=1e-300
        )

    def test_warmup_compiles(self):
        assert metrics_kernels.warmup() is True
