"""Scalar ↔ vectorized equivalence of the bulk evaluation path.

The :class:`~repro.core.metrics_bulk.BulkEvaluator` must agree with the
scalar :func:`~repro.core.metrics.evaluate` /
:class:`~repro.core.metrics.EvaluationCache` on every mapping, within
the documented :data:`~repro.core.metrics_bulk.BULK_RELATIVE_TOLERANCE`
— on random instances of every platform class, and on the degenerate
shapes (single interval, every stage its own interval) where padding
bugs would hide.
"""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import (
    BULK_RELATIVE_TOLERANCE,
    BulkEvaluator,
    EvaluationCache,
    IntervalMapping,
    MappingBlock,
    PipelineApplication,
    Platform,
    evaluate,
    nondominated_mask,
    pareto_front,
)
from repro.core.enumeration import (
    allocation_mask_rows,
    allocations_for_partition,
    enumerate_interval_mappings,
    iter_mapping_blocks,
)
from repro.core.pareto import BiCriteriaPoint
from repro.exceptions import SolverError

from tests.helpers import make_instance
from tests.strategies import (
    applications,
    comm_homogeneous_platforms,
    fully_heterogeneous_platforms,
    interval_mappings,
    platforms,
)

np = pytest.importorskip("numpy", exc_type=ImportError)


def assert_bulk_matches_scalar(app, plat, mappings, *, one_port=True):
    """Encode ``mappings`` and compare both objectives per row."""
    block = MappingBlock.from_mappings(mappings, app.num_stages, plat.size)
    evaluator = BulkEvaluator(app, plat, one_port=one_port)
    lats, fps = evaluator.evaluate_block(block)
    cache = EvaluationCache(app, plat, one_port=one_port)
    for i, mapping in enumerate(mappings):
        scalar = cache.evaluate(mapping)
        assert math.isclose(
            lats[i], scalar.latency, rel_tol=BULK_RELATIVE_TOLERANCE
        ), (mapping, lats[i], scalar.latency)
        assert math.isclose(
            fps[i],
            scalar.failure_probability,
            rel_tol=BULK_RELATIVE_TOLERANCE,
            abs_tol=1e-300,
        ), (mapping, fps[i], scalar.failure_probability)


@st.composite
def app_platform_mappings(draw, platform_strategy=None, max_mappings=8):
    """A consistent (application, platform, [mappings]) triple."""
    app = draw(applications(max_stages=4))
    if platform_strategy is None:
        platform_strategy = platforms(min_processors=1, max_processors=5)
    plat = draw(platform_strategy)
    count = draw(st.integers(min_value=1, max_value=max_mappings))
    mappings = [
        draw(interval_mappings(app.num_stages, plat.size))
        for _ in range(count)
    ]
    return app, plat, mappings


class TestBulkMatchesScalar:
    @given(app_platform_mappings())
    @settings(max_examples=120, deadline=None)
    def test_any_platform_class(self, triple):
        app, plat, mappings = triple
        assert_bulk_matches_scalar(app, plat, mappings)

    @given(
        app_platform_mappings(
            platform_strategy=comm_homogeneous_platforms(
                min_processors=1, max_processors=6
            )
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_uniform_links(self, triple):
        app, plat, mappings = triple
        assert_bulk_matches_scalar(app, plat, mappings)

    @given(
        app_platform_mappings(
            platform_strategy=fully_heterogeneous_platforms(
                min_processors=1, max_processors=5
            )
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_heterogeneous_links(self, triple):
        app, plat, mappings = triple
        assert_bulk_matches_scalar(app, plat, mappings)

    @given(app_platform_mappings())
    @settings(max_examples=40, deadline=None)
    def test_multi_port_ablation(self, triple):
        app, plat, mappings = triple
        assert_bulk_matches_scalar(app, plat, mappings, one_port=False)

    @pytest.mark.parametrize(
        "kind", ["comm-homogeneous", "fully-heterogeneous"]
    )
    @pytest.mark.parametrize("seed", range(3))
    def test_whole_space_small_instances(self, kind, seed):
        app, plat = make_instance(kind, n=4, m=4, seed=seed)
        mappings = list(enumerate_interval_mappings(4, 4))
        assert_bulk_matches_scalar(app, plat, mappings)


class TestEdgeShapes:
    """Padding-sensitive degenerate shapes, checked explicitly."""

    @pytest.mark.parametrize(
        "kind", ["comm-homogeneous", "fully-heterogeneous"]
    )
    def test_single_interval_full_replication(self, kind):
        app, plat = make_instance(kind, n=5, m=4, seed=7)
        mappings = [
            IntervalMapping.single_interval(5, {1}),
            IntervalMapping.single_interval(5, {3}),
            IntervalMapping.single_interval(5, {1, 2, 3, 4}),
        ]
        assert_bulk_matches_scalar(app, plat, mappings)

    @pytest.mark.parametrize(
        "kind", ["comm-homogeneous", "fully-heterogeneous"]
    )
    def test_every_stage_its_own_interval(self, kind):
        app, plat = make_instance(kind, n=4, m=4, seed=7)
        mappings = [
            IntervalMapping.one_to_one([1, 2, 3, 4]),
            IntervalMapping.one_to_one([4, 3, 2, 1]),
        ]
        assert_bulk_matches_scalar(app, plat, mappings)

    def test_single_stage_pipeline(self):
        app = PipelineApplication(works=(3.0,), volumes=(1.0, 2.0))
        plat = Platform.communication_homogeneous(
            [1.0, 2.0], failure_probabilities=[0.2, 0.5]
        )
        mappings = list(enumerate_interval_mappings(1, 2))
        assert_bulk_matches_scalar(app, plat, mappings)

    def test_certain_failure_maps_to_fp_one(self):
        app = PipelineApplication(works=(1.0, 1.0), volumes=(1.0, 1.0, 1.0))
        plat = Platform.communication_homogeneous(
            [1.0, 1.0], failure_probabilities=[1.0, 0.5]
        )
        mappings = list(enumerate_interval_mappings(2, 2))
        assert_bulk_matches_scalar(app, plat, mappings)

    def test_reference_instances(self, fig34, fig5):
        for inst in (fig34, fig5):
            app, plat = inst.application, inst.platform
            mappings = list(
                enumerate_interval_mappings(app.num_stages, plat.size)
            )[:2000]
            assert_bulk_matches_scalar(app, plat, mappings)


class TestMappingBlock:
    def test_round_trip(self):
        app, plat = make_instance("comm-homogeneous", n=5, m=3, seed=0)
        mappings = list(enumerate_interval_mappings(5, 3))
        block = MappingBlock.from_mappings(mappings, 5, 3)
        assert len(block) == len(mappings)
        assert list(block.mappings()) == mappings

    def test_instance_mismatch_rejected(self):
        app, plat = make_instance("comm-homogeneous", n=3, m=3, seed=0)
        other_app, other_plat = make_instance(
            "comm-homogeneous", n=4, m=2, seed=0
        )
        block = MappingBlock.from_mappings(
            list(enumerate_interval_mappings(4, 2)), 4, 2
        )
        evaluator = BulkEvaluator(app, plat)
        with pytest.raises(SolverError):
            evaluator.latencies(block)


class TestIterMappingBlocks:
    @pytest.mark.parametrize("n,m", [(1, 1), (3, 2), (4, 4), (5, 3), (7, 4)])
    def test_matches_scalar_enumeration_in_order(self, n, m):
        app, plat = make_instance("comm-homogeneous", n=n, m=m, seed=1)
        scalar = list(enumerate_interval_mappings(n, m))
        blocks = list(iter_mapping_blocks(app, plat, block_size=64))
        decoded = [mp for block in blocks for mp in block.mappings()]
        assert decoded == scalar
        assert all(len(block) <= 64 for block in blocks)

    def test_max_replication_parity(self):
        app, plat = make_instance("comm-homogeneous", n=4, m=4, seed=2)
        scalar = list(
            enumerate_interval_mappings(4, 4, max_replication=2)
        )
        decoded = [
            mp
            for block in iter_mapping_blocks(
                app, plat, block_size=50, max_replication=2
            )
            for mp in block.mappings()
        ]
        assert decoded == scalar

    def test_allocation_mask_rows_match_frozenset_enumeration(self):
        for p, m in [(1, 3), (2, 4), (3, 4), (4, 4)]:
            masks = allocation_mask_rows(p, m)
            reference = [
                tuple(
                    sum(1 << (u - 1) for u in alloc) for alloc in allocs
                )
                for allocs in allocations_for_partition(
                    p, range(1, m + 1)
                )
            ]
            assert masks == reference

    def test_invalid_block_size_rejected(self):
        app, plat = make_instance("comm-homogeneous", n=3, m=2, seed=0)
        with pytest.raises(ValueError):
            next(iter_mapping_blocks(app, plat, block_size=0))


class TestNondominatedMask:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=4.0, allow_nan=False),
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_prefilter_preserves_pareto_front(self, pairs):
        lats = np.array([p[0] for p in pairs])
        fps = np.array([p[1] for p in pairs])
        keep = nondominated_mask(lats, fps)
        points = [
            BiCriteriaPoint(lat, fp, payload=i)
            for i, (lat, fp) in enumerate(pairs)
        ]
        survivors = [p for p, k in zip(points, keep) if k]
        full_front = pareto_front(points)
        filtered_front = pareto_front(survivors)
        assert [
            (p.latency, p.failure_probability, p.payload)
            for p in filtered_front
        ] == [
            (p.latency, p.failure_probability, p.payload)
            for p in full_front
        ]

    def test_duplicates_all_kept(self):
        lats = np.array([1.0, 1.0, 2.0])
        fps = np.array([0.5, 0.5, 0.1])
        assert nondominated_mask(lats, fps).tolist() == [True, True, True]

    def test_empty_input(self):
        assert nondominated_mask(np.zeros(0), np.zeros(0)).tolist() == []


class TestShardedEvaluation:
    """Threaded row-sharding must be bit-identical and size-gated."""

    def _big_block(self, kind, n=13, m=4, seed=3):
        app, plat = make_instance(kind, n, m, seed)
        mappings = list(enumerate_interval_mappings(n, m))
        assert len(mappings) > 4 * 2048  # really engages the fan-out
        block = MappingBlock.from_mappings(mappings, n, m)
        return app, plat, block

    @pytest.mark.parametrize(
        "kind", ["comm-homogeneous", "fully-heterogeneous"]
    )
    def test_shards_bit_identical(self, kind):
        app, plat, block = self._big_block(kind)
        single = BulkEvaluator(app, plat)
        sharded = BulkEvaluator(app, plat, shards=4)
        assert np.array_equal(
            single.latencies(block), sharded.latencies(block)
        )
        assert np.array_equal(
            single.failure_probabilities(block),
            sharded.failure_probabilities(block),
        )
        lats, fps = sharded.evaluate_block(block)
        ref_lats, ref_fps = single.evaluate_block(block)
        assert np.array_equal(lats, ref_lats)
        assert np.array_equal(fps, ref_fps)

    def test_small_blocks_never_spawn_threads(self, monkeypatch):
        from repro.core import metrics_bulk

        app, plat = make_instance("comm-homogeneous", 4, 3, 5)
        mappings = list(enumerate_interval_mappings(4, 3))
        block = MappingBlock.from_mappings(mappings, 4, 3)
        assert len(block) < metrics_bulk.SHARD_MIN_ROWS

        def no_threads(*args, **kwargs):  # pragma: no cover
            raise AssertionError("thread pool created for a small block")

        monkeypatch.setattr(
            metrics_bulk, "ThreadPoolExecutor", no_threads
        )
        sharded = BulkEvaluator(app, plat, shards=8)
        reference = BulkEvaluator(app, plat)
        assert np.array_equal(
            sharded.latencies(block), reference.latencies(block)
        )

    def test_invalid_shards_rejected(self):
        app, plat = make_instance("comm-homogeneous", 3, 3, 1)
        with pytest.raises(SolverError, match="shards"):
            BulkEvaluator(app, plat, shards=0)

    def test_exhaustive_solver_with_shards_identical(self):
        from repro.algorithms.bicriteria.exhaustive import (
            exhaustive_minimize_fp,
        )

        app, plat = make_instance("comm-homogeneous", 4, 4, 7)
        plain = exhaustive_minimize_fp(app, plat, 40.0)
        sharded = exhaustive_minimize_fp(app, plat, 40.0, bulk_shards=4)
        assert sharded.latency == plain.latency
        assert sharded.failure_probability == plain.failure_probability
        assert sharded.mapping == plain.mapping

    def test_shard_min_rows_lowers_the_gate(self, monkeypatch):
        """A custom ``shard_min_rows`` engages the fan-out on small blocks."""
        from repro.core import metrics_bulk

        app, plat = make_instance("fully-heterogeneous", 4, 3, 5)
        mappings = list(enumerate_interval_mappings(4, 3))
        block = MappingBlock.from_mappings(mappings, 4, 3)
        assert len(block) < metrics_bulk.SHARD_MIN_ROWS

        created = []
        real_executor = metrics_bulk.ThreadPoolExecutor

        def record(*args, **kwargs):
            executor = real_executor(*args, **kwargs)
            created.append(executor)
            return executor

        monkeypatch.setattr(metrics_bulk, "ThreadPoolExecutor", record)
        reference = BulkEvaluator(app, plat)
        with BulkEvaluator(app, plat, shards=4, shard_min_rows=2) as sharded:
            assert sharded.shard_min_rows == 2
            assert np.array_equal(
                sharded.latencies(block), reference.latencies(block)
            )
            assert np.array_equal(
                sharded.failure_probabilities(block),
                reference.failure_probabilities(block),
            )
        assert len(created) == 1

    def test_invalid_shard_min_rows_rejected(self):
        app, plat = make_instance("comm-homogeneous", 3, 3, 1)
        with pytest.raises(SolverError, match="shard_min_rows"):
            BulkEvaluator(app, plat, shard_min_rows=0)


class TestPersistentExecutor:
    """The shard pool is created lazily, reused, and closed exactly once."""

    def _instrument(self, monkeypatch):
        from repro.core import metrics_bulk

        created = []
        real_executor = metrics_bulk.ThreadPoolExecutor

        class Recording(real_executor):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.shutdown_calls = 0
                created.append(self)

            def shutdown(self, *args, **kwargs):
                self.shutdown_calls += 1
                super().shutdown(*args, **kwargs)

        monkeypatch.setattr(metrics_bulk, "ThreadPoolExecutor", Recording)
        return created

    def _sharded_evaluator(self):
        app, plat = make_instance("comm-homogeneous", 4, 3, 2)
        mappings = list(enumerate_interval_mappings(4, 3))
        block = MappingBlock.from_mappings(mappings, 4, 3)
        return BulkEvaluator(app, plat, shards=2, shard_min_rows=1), block

    def test_lazy_creation_and_reuse(self, monkeypatch):
        created = self._instrument(monkeypatch)
        evaluator, block = self._sharded_evaluator()
        assert created == []  # construction alone spawns nothing
        evaluator.latencies(block)
        evaluator.failure_probabilities(block)
        evaluator.evaluate_block(block)
        assert len(created) == 1  # one pool serves every later block
        evaluator.close()
        assert created[0].shutdown_calls == 1

    def test_close_is_idempotent_and_reopens(self, monkeypatch):
        created = self._instrument(monkeypatch)
        evaluator, block = self._sharded_evaluator()
        evaluator.latencies(block)
        evaluator.close()
        evaluator.close()
        assert created[0].shutdown_calls == 1
        # evaluation after close simply builds a fresh pool
        evaluator.latencies(block)
        assert len(created) == 2
        evaluator.close()

    def test_context_manager_closes(self, monkeypatch):
        created = self._instrument(monkeypatch)
        evaluator, block = self._sharded_evaluator()
        with evaluator as ev:
            assert ev is evaluator
            ev.latencies(block)
        assert len(created) == 1
        assert created[0].shutdown_calls == 1


class TestHeterogeneousSendRestructure:
    """The keyed send table is bit-identical to the 4-D formulation.

    The former heterogeneous path materialised a ``(B, width, m, m)``
    ``send_uv`` array; the restructure reduces once per unique
    ``(end, next mask)`` pair and scatters back.  Each output element is
    the same numpy reduction over the same contiguous length-``m``
    values, so the results must match exactly — not just within
    tolerance.
    """

    @staticmethod
    def _legacy_latencies(ev, block):
        """The pre-restructure formulation, kept inline as the oracle."""
        masks = block.masks
        valid = masks != 0
        bits = ev._bits(masks)
        starts = ev._starts(block)
        work = ev._work_prefix[block.ends] - ev._work_prefix[starts - 1]
        delta_out = ev._volumes[block.ends]
        compute = work[..., None] / ev._speeds
        next_masks = np.zeros_like(masks)
        next_masks[:, :-1] = masks[:, 1:]
        next_bits = ev._bits(next_masks)
        counts = valid.sum(axis=1)
        col = np.arange(block.width)
        is_last = valid & (col == (counts - 1)[:, None])
        send_uv = delta_out[..., None, None] / ev._links  # (B, width, m, m)
        nb = next_bits[:, :, None, :]
        if ev.one_port:
            sends = np.where(nb, send_uv, 0.0).sum(axis=3)
        else:
            part = np.where(nb, send_uv, -np.inf).max(axis=3)
            sends = np.where(next_bits.any(axis=2)[..., None], part, 0.0)
        out_sends = delta_out[..., None] / ev._out_bw
        sends = np.where(is_last[..., None], out_sends, sends)
        per_replica = compute + sends
        worst = np.where(bits, per_replica, -np.inf).max(axis=2)
        terms = np.where(valid, worst, 0.0)
        in_times = ev.application.input_size / ev._in_bw
        first = bits[:, 0, :]
        if ev.one_port:
            input_term = np.where(first, in_times, 0.0).sum(axis=1)
        else:
            input_term = np.where(first, in_times, -np.inf).max(axis=1)
        return input_term + terms.sum(axis=1)

    @pytest.mark.parametrize("one_port", [True, False])
    @pytest.mark.parametrize("seed", range(3))
    def test_bit_identical_to_legacy(self, one_port, seed):
        app, plat = make_instance("fully-heterogeneous", 5, 4, seed)
        mappings = list(enumerate_interval_mappings(5, 4))
        block = MappingBlock.from_mappings(mappings, 5, 4)
        evaluator = BulkEvaluator(
            app, plat, one_port=one_port, backend="numpy"
        )
        assert np.array_equal(
            evaluator.latencies(block),
            self._legacy_latencies(evaluator, block),
        )

    @given(
        app_platform_mappings(
            platform_strategy=fully_heterogeneous_platforms(
                min_processors=1, max_processors=5
            )
        ),
        st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_bit_identical_on_random_instances(self, triple, one_port):
        app, plat, mappings = triple
        # degenerate draws (e.g. m=1) collapse to uniform links and take
        # the eq. (1) path, which has no send table to compare
        assume(not plat.is_communication_homogeneous)
        block = MappingBlock.from_mappings(
            mappings, app.num_stages, plat.size
        )
        evaluator = BulkEvaluator(
            app, plat, one_port=one_port, backend="numpy"
        )
        assert np.array_equal(
            evaluator.latencies(block),
            self._legacy_latencies(evaluator, block),
        )
