"""Unit tests for the interval-mapping enumeration machinery."""

import math

import pytest

from repro.core import (
    IntervalMapping,
    allocations_for_partition,
    count_interval_partitions,
    enumerate_interval_mappings,
    enumerate_one_to_one_mappings,
    interval_partitions,
)
from repro.algorithms.bicriteria import count_interval_mappings


class TestIntervalPartitions:
    def test_count_matches_formula(self):
        # 2^(n-1) partitions for unrestricted interval counts
        for n in range(1, 7):
            parts = list(interval_partitions(n))
            assert len(parts) == 2 ** (n - 1)
            assert count_interval_partitions(n) == 2 ** (n - 1)

    def test_partitions_are_valid(self):
        for partition in interval_partitions(4):
            assert partition[0].start == 1
            assert partition[-1].end == 4
            for left, right in zip(partition, partition[1:]):
                assert right.start == left.end + 1

    def test_max_intervals_cap(self):
        capped = list(interval_partitions(4, max_intervals=2))
        assert all(len(p) <= 2 for p in capped)
        assert len(capped) == 1 + 3  # 1 single + C(3,1) two-interval
        assert count_interval_partitions(4, max_intervals=2) == 4

    def test_rejects_zero_stages(self):
        with pytest.raises(ValueError):
            list(interval_partitions(0))


class TestAllocations:
    def test_counts_small(self):
        # 2 intervals over 3 procs: ordered disjoint non-empty pairs
        allocs = list(allocations_for_partition(2, [1, 2, 3]))
        # (choose k=2: 3*2=6 ordered singleton pairs) +
        # (one pair singleton+double: 3 choices of pair * 2 orders = 6):
        # sum_k C(3,k)*2!*S(k,2) = C(3,2)*2*1 + C(3,3)*2*3 = 6 + 6? No:
        # S(2,2)=1 -> 3*2*1=6 ; S(3,2)=3 -> 1*2*3=6 ; total 12
        assert len(allocs) == 12
        for pair in allocs:
            assert len(pair) == 2
            assert pair[0] and pair[1]
            assert not (pair[0] & pair[1])

    def test_max_replication(self):
        allocs = list(
            allocations_for_partition(1, [1, 2, 3], max_replication=1)
        )
        assert len(allocs) == 3
        assert all(len(a[0]) == 1 for a in allocs)

    def test_rejects_zero_intervals(self):
        with pytest.raises(ValueError):
            list(allocations_for_partition(0, [1]))


class TestEnumerateMappings:
    def test_all_valid_and_unique(self):
        mappings = list(enumerate_interval_mappings(3, 3))
        assert all(isinstance(m, IntervalMapping) for m in mappings)
        keys = {(m.intervals, m.allocations) for m in mappings}
        assert len(keys) == len(mappings)

    def test_count_matches_closed_form(self):
        for n, m in [(1, 1), (2, 2), (2, 3), (3, 2), (3, 3), (1, 4)]:
            enumerated = sum(1 for _ in enumerate_interval_mappings(n, m))
            assert enumerated == count_interval_mappings(n, m), (n, m)

    def test_single_stage_counts(self):
        # n=1: every non-empty subset of processors
        assert count_interval_mappings(1, 4) == 2**4 - 1
        assert sum(1 for _ in enumerate_interval_mappings(1, 4)) == 15

    def test_one_to_one_enumeration(self):
        mappings = list(enumerate_one_to_one_mappings(2, 3))
        assert len(mappings) == 6  # 3P2 permutations
        assert all(m.is_one_to_one for m in mappings)

    def test_one_to_one_empty_when_m_lt_n(self):
        assert list(enumerate_one_to_one_mappings(3, 2)) == []

    def test_figure5_space_size(self):
        # the search space the exhaustive solver reports for Figure 5
        assert count_interval_mappings(2, 11) == 175099
