"""Round-trip tests for the JSON serialisation layer."""

import json

import pytest
from hypothesis import given, settings

from repro.core import (
    GeneralMapping,
    IntervalMapping,
    application_from_dict,
    application_to_dict,
    instance_from_dict,
    instance_to_dict,
    mapping_from_dict,
    mapping_to_dict,
    platform_from_dict,
    platform_to_dict,
)
from repro.exceptions import ReproError

from tests.strategies import (
    applications,
    app_platform_mapping,
    fully_heterogeneous_platforms,
    platforms,
)


class TestApplicationRoundTrip:
    @given(applications())
    @settings(max_examples=100, deadline=None)
    def test_roundtrip(self, app):
        data = application_to_dict(app)
        json.dumps(data)  # must be JSON-compatible
        assert application_from_dict(data) == app

    def test_stage_names_preserved(self):
        from repro.workloads.jpeg import jpeg_encoder_pipeline

        app = jpeg_encoder_pipeline(width=64, height=64)
        rebuilt = application_from_dict(application_to_dict(app))
        assert rebuilt.stage_names == app.stage_names

    def test_wrong_kind_rejected(self):
        with pytest.raises(ReproError):
            application_from_dict({"kind": "platform", "schema": 1})

    def test_wrong_schema_rejected(self):
        with pytest.raises(ReproError):
            application_from_dict({"kind": "application", "schema": 99})


class TestPlatformRoundTrip:
    @given(platforms())
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_metrics_equivalent(self, plat):
        """The rebuilt platform must be metric-indistinguishable."""
        from repro.core import IN, OUT

        data = platform_to_dict(plat)
        json.dumps(data)
        rebuilt = platform_from_dict(data)
        assert rebuilt.speeds == plat.speeds
        assert rebuilt.failure_probabilities == plat.failure_probabilities
        m = plat.size
        for u in range(1, m + 1):
            assert rebuilt.bandwidth(IN, u) == plat.bandwidth(IN, u)
            assert rebuilt.bandwidth(u, OUT) == plat.bandwidth(u, OUT)
            for v in range(1, m + 1):
                if u != v:
                    assert rebuilt.bandwidth(u, v) == plat.bandwidth(u, v)
        assert rebuilt.platform_class is plat.platform_class

    @given(fully_heterogeneous_platforms(min_processors=2))
    @settings(max_examples=50, deadline=None)
    def test_heterogeneous_roundtrip(self, plat):
        rebuilt = platform_from_dict(platform_to_dict(plat))
        assert rebuilt.topology == plat.topology

    def test_processor_names_preserved(self):
        from repro.core import Platform, Processor, UniformTopology

        procs = (
            Processor(index=1, speed=1.0, failure_probability=0.1, name="head"),
            Processor(index=2, speed=2.0, failure_probability=0.2, name="gpu"),
        )
        plat = Platform(procs, UniformTopology(2, 1.0))
        rebuilt = platform_from_dict(platform_to_dict(plat))
        assert [p.name for p in rebuilt.processors] == ["head", "gpu"]


class TestMappingRoundTrip:
    def test_interval_mapping(self):
        mapping = IntervalMapping([(1, 2), (3, 3)], [{1, 4}, {2}])
        data = mapping_to_dict(mapping)
        json.dumps(data)
        assert mapping_from_dict(data) == mapping

    def test_general_mapping(self):
        mapping = GeneralMapping([2, 1, 2])
        assert mapping_from_dict(mapping_to_dict(mapping)) == mapping

    def test_unknown_kind(self):
        with pytest.raises(ReproError):
            mapping_from_dict({"kind": "nonsense"})


class TestInstanceRoundTrip:
    @given(app_platform_mapping())
    @settings(max_examples=50, deadline=None)
    def test_full_instance(self, triple):
        from repro.core import failure_probability, latency

        app, plat, mapping = triple
        data = instance_to_dict(app, plat, mapping)
        json.dumps(data)
        app2, plat2, mapping2 = instance_from_dict(data)
        # the round-tripped triple evaluates identically
        assert latency(mapping2, app2, plat2) == latency(mapping, app, plat)
        assert failure_probability(mapping2, plat2) == failure_probability(
            mapping, plat
        )

    def test_instance_without_mapping(self):
        from repro.workloads.reference import figure5_instance

        inst = figure5_instance()
        data = instance_to_dict(inst.application, inst.platform)
        app, plat, mapping = instance_from_dict(data)
        assert mapping is None
        assert app == inst.application


class TestSolverResultRoundTrip:
    def _result(self):
        from repro.algorithms.heuristics import greedy_minimize_fp

        from tests.helpers import make_instance

        app, plat = make_instance("comm-homogeneous", 3, 4, 7)
        return greedy_minimize_fp(app, plat, 60.0)

    def test_roundtrip_bit_identical(self):
        from repro.core.serialization import (
            solver_result_from_dict,
            solver_result_to_dict,
        )

        result = self._result()
        data = solver_result_to_dict(result)
        json.dumps(data)  # must be JSON-compatible
        back = solver_result_from_dict(data)
        assert back.latency == result.latency  # bitwise
        assert back.failure_probability == result.failure_probability
        assert back.mapping == result.mapping
        assert back.solver == result.solver
        assert back.optimal == result.optimal

    def test_json_text_round_trip_preserves_floats(self):
        from repro.core.serialization import (
            solver_result_from_dict,
            solver_result_to_dict,
        )

        result = self._result()
        text = json.dumps(solver_result_to_dict(result))
        back = solver_result_from_dict(json.loads(text))
        assert back.latency == result.latency
        assert back.failure_probability == result.failure_probability

    def test_wrong_kind_rejected(self):
        from repro.core.serialization import solver_result_from_dict

        with pytest.raises(ReproError, match="solver-result"):
            solver_result_from_dict({"kind": "application", "schema": 1})


class TestCanonicalJson:
    def test_key_order_independent(self):
        from repro.core.serialization import canonical_json

        assert canonical_json({"b": 1, "a": 2}) == canonical_json(
            {"a": 2, "b": 1}
        )

    def test_compact_and_deterministic(self):
        from repro.core.serialization import canonical_json

        text = canonical_json({"a": [1, 2.5, "x"], "b": None})
        assert text == '{"a":[1,2.5,"x"],"b":null}'

    def test_coerces_tuples_and_sets(self):
        from repro.core.serialization import canonical_json

        assert canonical_json((1, 2)) == "[1,2]"
        assert canonical_json({3, 1, 2}) == "[1,2,3]"

    def test_float_bits_survive(self):
        from repro.core.serialization import canonical_json

        value = 0.1 + 0.2  # 0.30000000000000004
        assert json.loads(canonical_json(value)) == value
