"""Unit tests for mapping/application/platform compatibility checks."""

import pytest

from repro.core import (
    GeneralMapping,
    IntervalMapping,
    PipelineApplication,
    Platform,
    is_valid_mapping,
    validate_mapping,
)
from repro.exceptions import InvalidMappingError


@pytest.fixture
def app():
    return PipelineApplication(works=(1, 2), volumes=(1, 1, 1))


@pytest.fixture
def platform():
    return Platform.fully_homogeneous(3)


class TestValidateMapping:
    def test_accepts_valid_interval_mapping(self, app, platform):
        mapping = IntervalMapping([(1, 1), (2, 2)], [{1}, {2, 3}])
        validate_mapping(mapping, app, platform)  # no raise
        assert is_valid_mapping(mapping, app, platform)

    def test_accepts_valid_general_mapping(self, app, platform):
        validate_mapping(GeneralMapping([3, 3]), app, platform)

    def test_rejects_wrong_stage_count(self, app, platform):
        mapping = IntervalMapping.single_interval(3, {1})
        with pytest.raises(InvalidMappingError, match="stages"):
            validate_mapping(mapping, app, platform)
        assert not is_valid_mapping(mapping, app, platform)

    def test_rejects_unknown_processor(self, app, platform):
        mapping = IntervalMapping.single_interval(2, {4})
        with pytest.raises(InvalidMappingError, match="P4"):
            validate_mapping(mapping, app, platform)

    def test_rejects_zero_processor(self, app, platform):
        mapping = GeneralMapping([0, 1])
        with pytest.raises(InvalidMappingError):
            validate_mapping(mapping, app, platform)

    def test_general_mapping_stage_count(self, app, platform):
        with pytest.raises(InvalidMappingError):
            validate_mapping(GeneralMapping([1, 2, 3]), app, platform)

    def test_general_mapping_may_reuse_processor(self, platform):
        app3 = PipelineApplication(works=(1, 1, 1), volumes=(1, 1, 1, 1))
        validate_mapping(GeneralMapping([1, 2, 1]), app3, platform)
