"""Property-based invariants of the metric functions (hypothesis)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    IntervalMapping,
    failure_probability,
    latency,
    latency_heterogeneous,
    latency_uniform,
)

from tests.strategies import (
    app_platform_mapping,
    comm_homogeneous_platforms,
    fully_heterogeneous_platforms,
)


@given(app_platform_mapping(comm_homogeneous_platforms(max_processors=5)))
@settings(max_examples=150, deadline=None)
def test_eq1_equals_eq2_on_uniform_links(triple):
    """Paper eq. (1) is the uniform-bandwidth specialisation of eq. (2)."""
    app, platform, mapping = triple
    eq1 = latency_uniform(mapping, app, platform)
    eq2 = latency_heterogeneous(mapping, app, platform)
    assert math.isclose(eq1, eq2, rel_tol=1e-9, abs_tol=1e-9)


@given(app_platform_mapping(comm_homogeneous_platforms(max_processors=5)))
@settings(max_examples=100, deadline=None)
def test_eq1_equals_eq2_under_multiport_ablation(triple):
    app, platform, mapping = triple
    eq1 = latency_uniform(mapping, app, platform, one_port=False)
    eq2 = latency_heterogeneous(mapping, app, platform, one_port=False)
    assert math.isclose(eq1, eq2, rel_tol=1e-9, abs_tol=1e-9)


@given(app_platform_mapping())
@settings(max_examples=150, deadline=None)
def test_fp_within_unit_interval(triple):
    _, platform, mapping = triple
    fp = failure_probability(mapping, platform)
    assert 0.0 <= fp <= 1.0


@given(app_platform_mapping())
@settings(max_examples=150, deadline=None)
def test_latency_non_negative(triple):
    app, platform, mapping = triple
    assert latency(mapping, app, platform) >= 0.0


@given(app_platform_mapping())
@settings(max_examples=100, deadline=None)
def test_one_port_never_faster_than_multiport(triple):
    """Serialised fan-out can only add latency (ablation sanity)."""
    app, platform, mapping = triple
    serial = latency(mapping, app, platform, one_port=True)
    multi = latency(mapping, app, platform, one_port=False)
    assert serial >= multi - 1e-9


@given(
    app_platform_mapping(fully_heterogeneous_platforms(min_processors=2)),
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=100, deadline=None)
def test_adding_a_replica_lowers_fp_and_raises_latency(triple, pick):
    """Replication is the paper's core trade-off: FP down, latency up."""
    app, platform, mapping = triple
    unused = sorted(
        set(range(1, platform.size + 1)) - set(mapping.used_processors)
    )
    if not unused:
        return
    extra = unused[pick % len(unused)]
    j = pick % mapping.num_intervals
    allocations = [set(a) for a in mapping.allocations]
    allocations[j].add(extra)
    bigger = IntervalMapping(list(mapping.intervals), allocations)

    assert failure_probability(bigger, platform) <= (
        failure_probability(mapping, platform) + 1e-12
    )
    assert latency(bigger, app, platform) >= (
        latency(mapping, app, platform) - 1e-9
    )


@given(app_platform_mapping())
@settings(max_examples=100, deadline=None)
def test_fp_independent_of_costs(triple):
    """FP depends only on the allocation structure, never on stage costs."""
    app, platform, mapping = triple
    fp1 = failure_probability(mapping, platform)
    fp2 = failure_probability(mapping, platform, app.scaled(3.0, 0.25))
    assert fp1 == fp2


@given(
    app_platform_mapping(comm_homogeneous_platforms(max_processors=5)),
    st.floats(min_value=0.1, max_value=4.0, allow_nan=False),
)
@settings(max_examples=100, deadline=None)
def test_latency_scales_linearly_with_work(triple, factor):
    """On a fixed mapping, scaling all works scales the compute term."""
    app, platform, mapping = triple
    base = latency(mapping, app, platform)
    comm_only = latency(mapping, app.scaled(0.0, 1.0), platform)
    scaled = latency(mapping, app.scaled(factor, 1.0), platform)
    expected = comm_only + factor * (base - comm_only)
    assert math.isclose(scaled, expected, rel_tol=1e-9, abs_tol=1e-9)
