"""Unit tests for processors, topologies and platform classification."""

import pytest

from repro.core import (
    IN,
    OUT,
    FailureClass,
    HeterogeneousTopology,
    Platform,
    PlatformClass,
    Processor,
    UniformTopology,
)
from repro.exceptions import InvalidPlatformError


class TestProcessor:
    def test_fields_and_helpers(self):
        p = Processor(index=3, speed=2.0, failure_probability=0.25)
        assert p.reliability == 0.75
        assert p.label == "P3"
        assert p.execution_time(6.0) == 3.0

    def test_named_label(self):
        p = Processor(index=1, speed=1.0, failure_probability=0.0, name="head")
        assert p.label == "head"

    def test_rejects_bad_speed(self):
        with pytest.raises(InvalidPlatformError):
            Processor(index=1, speed=0.0, failure_probability=0.1)
        with pytest.raises(InvalidPlatformError):
            Processor(index=1, speed=float("inf"), failure_probability=0.1)

    def test_rejects_bad_fp(self):
        with pytest.raises(InvalidPlatformError):
            Processor(index=1, speed=1.0, failure_probability=-0.1)
        with pytest.raises(InvalidPlatformError):
            Processor(index=1, speed=1.0, failure_probability=1.5)

    def test_rejects_bad_index(self):
        with pytest.raises(InvalidPlatformError):
            Processor(index=0, speed=1.0, failure_probability=0.1)

    def test_execution_time_rejects_negative_work(self):
        p = Processor(index=1, speed=1.0, failure_probability=0.0)
        with pytest.raises(ValueError):
            p.execution_time(-1.0)

    def test_ordering_by_index(self):
        a = Processor(index=1, speed=9.0, failure_probability=0.0)
        b = Processor(index=2, speed=1.0, failure_probability=0.0)
        assert sorted([b, a]) == [a, b]


class TestUniformTopology:
    def test_bandwidth_everywhere(self):
        topo = UniformTopology(3, 4.0)
        assert topo.bandwidth(IN, 1) == 4.0
        assert topo.bandwidth(2, 3) == 4.0
        assert topo.bandwidth(3, OUT) == 4.0
        assert topo.is_uniform

    def test_transfer_time(self):
        topo = UniformTopology(2, 4.0)
        assert topo.transfer_time(8.0, IN, 1) == 2.0
        assert topo.transfer_time(0.0, 1, 2) == 0.0
        assert topo.transfer_time(5.0, 1, 1) == 0.0  # intra-processor

    def test_transfer_rejects_negative_size(self):
        topo = UniformTopology(2, 1.0)
        with pytest.raises(ValueError):
            topo.transfer_time(-1.0, 1, 2)

    def test_rejects_self_link_query(self):
        topo = UniformTopology(2, 1.0)
        with pytest.raises(InvalidPlatformError):
            topo.bandwidth(1, 1)

    def test_rejects_out_of_range(self):
        topo = UniformTopology(2, 1.0)
        with pytest.raises(InvalidPlatformError):
            topo.bandwidth(IN, 3)

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(InvalidPlatformError):
            UniformTopology(2, 0.0)


class TestHeterogeneousTopology:
    def make(self):
        return HeterogeneousTopology(
            in_bandwidths=[100.0, 1.0],
            out_bandwidths=[1.0, 100.0],
            link_bandwidths=[[1.0, 100.0], [100.0, 1.0]],
        )

    def test_bandwidths(self):
        topo = self.make()
        assert topo.bandwidth(IN, 1) == 100.0
        assert topo.bandwidth(IN, 2) == 1.0
        assert topo.bandwidth(1, OUT) == 1.0
        assert topo.bandwidth(2, OUT) == 100.0
        assert topo.bandwidth(1, 2) == 100.0
        assert topo.bandwidth(2, 1) == 100.0
        assert not topo.is_uniform

    def test_diagonal_ignored(self):
        # diagonal entries are replaced by +inf internally and never used
        topo = self.make()
        with pytest.raises(InvalidPlatformError):
            topo.bandwidth(1, 1)

    def test_rejects_asymmetric_links(self):
        with pytest.raises(InvalidPlatformError):
            HeterogeneousTopology(
                in_bandwidths=[1.0, 1.0],
                out_bandwidths=[1.0, 1.0],
                link_bandwidths=[[1.0, 2.0], [3.0, 1.0]],
            )

    def test_rejects_non_square(self):
        with pytest.raises(InvalidPlatformError):
            HeterogeneousTopology([1.0], [1.0], [[1.0, 2.0]])

    def test_rejects_size_mismatch(self):
        with pytest.raises(InvalidPlatformError):
            HeterogeneousTopology([1.0, 1.0], [1.0], [[1.0, 1.0], [1.0, 1.0]])

    def test_uniform_detection(self):
        topo = HeterogeneousTopology(
            in_bandwidths=[2.0, 2.0],
            out_bandwidths=[2.0, 2.0],
            link_bandwidths=[[9.0, 2.0], [2.0, 9.0]],
        )
        assert topo.is_uniform

    def test_in_out_link_defaults_to_max(self):
        topo = self.make()
        assert topo.bandwidth(IN, OUT) == 100.0

    def test_equality_and_hash(self):
        assert self.make() == self.make()
        assert hash(self.make()) == hash(self.make())


class TestPlatformClassification:
    def test_fully_homogeneous(self):
        plat = Platform.fully_homogeneous(3, speed=2.0, bandwidth=1.0)
        assert plat.platform_class is PlatformClass.FULLY_HOMOGENEOUS
        assert plat.is_fully_homogeneous
        assert plat.is_communication_homogeneous  # inclusive
        assert not plat.is_fully_heterogeneous
        assert plat.failure_class is FailureClass.HOMOGENEOUS

    def test_comm_homogeneous(self):
        plat = Platform.communication_homogeneous([1.0, 2.0], bandwidth=1.0)
        assert plat.platform_class is PlatformClass.COMMUNICATION_HOMOGENEOUS
        assert plat.is_communication_homogeneous
        assert not plat.is_fully_homogeneous

    def test_fully_heterogeneous(self, het_platform):
        assert het_platform.platform_class is PlatformClass.FULLY_HETEROGENEOUS
        assert het_platform.is_fully_heterogeneous
        assert not het_platform.is_communication_homogeneous

    def test_failure_heterogeneous(self):
        plat = Platform.fully_homogeneous(
            2, failure_probabilities=[0.1, 0.2]
        )
        assert plat.failure_class is FailureClass.HETEROGENEOUS
        assert not plat.is_failure_homogeneous


class TestPlatformAccessors:
    def test_speed_and_fp(self):
        plat = Platform.communication_homogeneous(
            [3.0, 1.0], failure_probabilities=[0.1, 0.2]
        )
        assert plat.speed(1) == 3.0
        assert plat.failure_probability(2) == 0.2
        assert plat.speeds == (3.0, 1.0)
        assert plat.failure_probabilities == (0.1, 0.2)

    def test_processor_index_bounds(self):
        plat = Platform.fully_homogeneous(2)
        with pytest.raises(IndexError):
            plat.processor(0)
        with pytest.raises(IndexError):
            plat.processor(3)

    def test_uniform_bandwidth(self):
        plat = Platform.fully_homogeneous(2, bandwidth=7.0)
        assert plat.uniform_bandwidth == 7.0

    def test_uniform_bandwidth_rejects_heterogeneous(self, het_platform):
        with pytest.raises(InvalidPlatformError):
            het_platform.uniform_bandwidth

    def test_orderings(self):
        plat = Platform.communication_homogeneous(
            [1.0, 3.0, 2.0], failure_probabilities=[0.5, 0.2, 0.9]
        )
        assert [p.index for p in plat.by_speed_descending()] == [2, 3, 1]
        assert [p.index for p in plat.by_reliability_descending()] == [2, 1, 3]
        assert plat.fastest().index == 2
        assert plat.kth_fastest_speed(1) == 3.0
        assert plat.kth_fastest_speed(3) == 1.0

    def test_kth_fastest_bounds(self):
        plat = Platform.fully_homogeneous(2)
        with pytest.raises(IndexError):
            plat.kth_fastest_speed(0)
        with pytest.raises(IndexError):
            plat.kth_fastest_speed(3)

    def test_speed_ordering_tie_break_by_index(self):
        plat = Platform.communication_homogeneous([2.0, 2.0, 1.0])
        assert [p.index for p in plat.by_speed_descending()] == [1, 2, 3]

    def test_with_failure_probabilities(self):
        plat = Platform.fully_homogeneous(2, failure_probability=0.5)
        new = plat.with_failure_probabilities([0.1, 0.2])
        assert new.failure_probabilities == (0.1, 0.2)
        assert new.speeds == plat.speeds
        with pytest.raises(InvalidPlatformError):
            plat.with_failure_probabilities([0.1])

    def test_constructor_validation(self):
        with pytest.raises(InvalidPlatformError):
            Platform(processors=(), topology=UniformTopology(1, 1.0))
        with pytest.raises(InvalidPlatformError):
            Platform.communication_homogeneous(
                [1.0], failure_probabilities=[0.1, 0.2]
            )
        with pytest.raises(InvalidPlatformError):
            Platform.fully_homogeneous(2, failure_probabilities=[0.1])

    def test_processors_must_be_consecutive(self):
        procs = (
            Processor(index=1, speed=1.0, failure_probability=0.0),
            Processor(index=3, speed=1.0, failure_probability=0.0),
        )
        with pytest.raises(InvalidPlatformError):
            Platform(procs, UniformTopology(2, 1.0))

    def test_topology_size_must_match(self):
        procs = (Processor(index=1, speed=1.0, failure_probability=0.0),)
        with pytest.raises(InvalidPlatformError):
            Platform(procs, UniformTopology(2, 1.0))

    def test_fully_heterogeneous_constructor_fp_mismatch(self):
        with pytest.raises(InvalidPlatformError):
            Platform.fully_heterogeneous(
                speeds=[1.0],
                in_bandwidths=[1.0],
                out_bandwidths=[1.0],
                link_bandwidths=[[1.0]],
                failure_probabilities=[0.1, 0.2],
            )
