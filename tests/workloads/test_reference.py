"""The paper's Section 3 examples must reproduce digit-for-digit."""

import pytest

from repro.core import failure_probability, latency
from repro.workloads.reference import figure5_instance, figure34_instance


class TestFigure34:
    def test_claimed_single_processor_latency(self):
        inst = figure34_instance()
        for mapping in inst.single_processor_mappings:
            assert latency(
                mapping, inst.application, inst.platform
            ) == pytest.approx(inst.claimed_single_latency, abs=1e-12)

    def test_claimed_split_latency(self):
        inst = figure34_instance()
        assert latency(
            inst.split_mapping, inst.application, inst.platform
        ) == pytest.approx(inst.claimed_split_latency, abs=1e-12)

    def test_split_is_globally_optimal(self):
        """The paper: 'a mapping which minimizes the latency must map each
        stage on a different processor'."""
        from repro.algorithms.mono import (
            minimize_latency_general,
            minimize_latency_interval_exact,
        )

        inst = figure34_instance()
        sp = minimize_latency_general(inst.application, inst.platform)
        assert sp.latency == pytest.approx(7.0)
        exact = minimize_latency_interval_exact(inst.application, inst.platform)
        assert exact.latency == pytest.approx(7.0)
        assert exact.mapping.num_intervals == 2

    def test_platform_is_fully_heterogeneous(self):
        inst = figure34_instance()
        assert inst.platform.is_fully_heterogeneous


class TestFigure5:
    def test_single_interval_claims(self):
        inst = figure5_instance()
        lat = latency(
            inst.best_single_interval, inst.application, inst.platform
        )
        # paper: 2 fast processors give 2*10 + 101/100 = 21.01 <= 22
        assert lat == pytest.approx(21.01, abs=1e-12)
        assert lat <= inst.latency_threshold
        assert failure_probability(
            inst.best_single_interval, inst.platform
        ) == pytest.approx(inst.claimed_single_interval_fp, abs=1e-12)

    def test_three_fast_processors_violate_threshold(self):
        """Paper: 'if we use three fast processors, the latency is
        3*10 + 101/100 > 22'."""
        from repro.core import IntervalMapping

        inst = figure5_instance()
        three = IntervalMapping.single_interval(2, {2, 3, 4})
        assert latency(three, inst.application, inst.platform) > 22.0

    def test_slow_processor_unusable_in_single_interval(self):
        from repro.core import IntervalMapping

        inst = figure5_instance()
        with_slow = IntervalMapping.single_interval(2, {1, 2})
        # compute bound drops to speed 1: 101/1 dominates
        assert latency(with_slow, inst.application, inst.platform) > 22.0

    def test_two_interval_claims(self):
        inst = figure5_instance()
        lat = latency(
            inst.two_interval_mapping, inst.application, inst.platform
        )
        assert lat == pytest.approx(
            inst.claimed_two_interval_latency, abs=1e-12
        )
        fp = failure_probability(inst.two_interval_mapping, inst.platform)
        assert fp == pytest.approx(inst.claimed_two_interval_fp, rel=1e-12)
        assert fp < inst.claimed_two_interval_fp_bound

    def test_two_interval_is_exhaustive_optimum(self):
        """The paper's solution is the true optimum under L=22."""
        from repro.algorithms.bicriteria import exhaustive_minimize_fp

        inst = figure5_instance()
        best = exhaustive_minimize_fp(
            inst.application, inst.platform, inst.latency_threshold
        )
        assert best.failure_probability == pytest.approx(
            inst.claimed_two_interval_fp, rel=1e-12
        )
        assert best.mapping.num_intervals == 2

    def test_platform_classification(self):
        inst = figure5_instance()
        assert inst.platform.is_communication_homogeneous
        assert not inst.platform.is_failure_homogeneous
