"""Tests for the JPEG encoder workload."""

import pytest

from repro.workloads.jpeg import JPEG_STAGE_NAMES, jpeg_encoder_pipeline


class TestJpegPipeline:
    def test_structure(self):
        app = jpeg_encoder_pipeline()
        assert app.num_stages == 7
        assert app.stage_names == JPEG_STAGE_NAMES

    def test_input_volume_matches_frame(self):
        app = jpeg_encoder_pipeline(width=100, height=50, bytes_per_pixel=3)
        assert app.input_size == 100 * 50 * 3

    def test_compression_ratio(self):
        """Output must be roughly a tenth of the input (JPEG ~10:1)."""
        app = jpeg_encoder_pipeline()
        ratio = app.input_size / app.output_size
        assert 8.0 <= ratio <= 12.0

    def test_volumes_shrink_after_subsampling(self):
        app = jpeg_encoder_pipeline()
        # delta_2 (after conversion) -> delta_3 (after 4:2:0) halves
        assert app.volume(3) == pytest.approx(app.volume(2) * 0.5)
        # and volumes never grow along the tail
        tail = app.volumes[2:]
        assert all(b <= a for a, b in zip(tail, tail[1:]))

    def test_dct_dominates_compute(self):
        app = jpeg_encoder_pipeline()
        dct_index = JPEG_STAGE_NAMES.index("block-dct") + 1
        assert app.work(dct_index) == max(app.works)

    def test_work_scale(self):
        base = jpeg_encoder_pipeline(work_scale=1.0)
        doubled = jpeg_encoder_pipeline(work_scale=2.0)
        assert doubled.total_work == pytest.approx(2 * base.total_work)
        assert doubled.volumes == base.volumes

    def test_validation(self):
        with pytest.raises(ValueError):
            jpeg_encoder_pipeline(width=0)
        with pytest.raises(ValueError):
            jpeg_encoder_pipeline(bytes_per_pixel=0)

    def test_mappable_on_cluster(self):
        """Integration smoke: the workload flows through the solvers."""
        from repro.algorithms.bicriteria import exhaustive_minimize_fp
        from repro.core import Platform, latency
        from repro.core.mapping import IntervalMapping

        app = jpeg_encoder_pipeline(width=64, height=64, work_scale=1e-6)
        plat = Platform.communication_homogeneous(
            [5.0, 3.0, 2.0], bandwidth=2000.0,
            failure_probabilities=[0.2, 0.1, 0.3],
        )
        single = IntervalMapping.single_interval(7, {1})
        budget = 2.0 * latency(single, app, plat)
        result = exhaustive_minimize_fp(app, plat, budget)
        assert result.latency <= budget
