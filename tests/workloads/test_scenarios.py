"""Scenario generators: determinism, structure, registry contract."""

import pytest

from repro.core.platform import PlatformClass
from repro.exceptions import ReproError
from repro.workloads.scenarios import (
    SCENARIOS,
    edge_hub_cloud,
    failure_mix,
    make_scenario,
    narrow_pipeline,
    scenario_names,
    wide_pipeline,
)


class TestRegistry:
    def test_names_sorted_and_complete(self):
        names = scenario_names()
        assert names == sorted(names)
        assert {
            "edge-hub-cloud",
            "failure-mix",
            "wide-pipeline",
            "narrow-pipeline",
        } <= set(names)

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_every_scenario_is_deterministic_and_valid(self, name):
        app1, plat1 = make_scenario(name, seed=42)
        app2, plat2 = make_scenario(name, seed=42)
        assert app1.works == app2.works
        assert app1.volumes == app2.volumes
        assert plat1.speeds == plat2.speeds
        assert plat1.failure_probabilities == plat2.failure_probabilities
        assert all(0.0 < fp < 1.0 for fp in plat1.failure_probabilities)
        assert all(s > 0.0 for s in plat1.speeds)

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_different_seeds_differ(self, name):
        app1, _ = make_scenario(name, seed=1)
        app2, _ = make_scenario(name, seed=2)
        assert app1.works != app2.works

    def test_unknown_scenario_lists_registry(self):
        with pytest.raises(ReproError, match="edge-hub-cloud"):
            make_scenario("no-such-scenario")

    def test_bad_params_are_a_clean_error(self):
        with pytest.raises(ReproError, match="bad parameters"):
            make_scenario("failure-mix", params={"bogus_knob": 3})


class TestEdgeHubCloud:
    def test_tier_structure(self):
        app, plat = edge_hub_cloud(
            seed=0, num_edge=3, num_hub=2, num_cloud=3
        )
        assert plat.size == 8
        assert plat.platform_class is PlatformClass.FULLY_HETEROGENEOUS
        speeds = plat.speeds
        fps = plat.failure_probabilities
        # tiers are ordered edge, hub, cloud with non-overlapping ranges
        assert max(speeds[:3]) < min(speeds[3:5]) < min(speeds[5:])
        assert min(fps[:3]) > max(fps[3:5]) > max(fps[5:])

    def test_parameterized_sizes(self):
        _, plat = edge_hub_cloud(seed=1, num_edge=1, num_hub=0, num_cloud=2)
        assert plat.size == 3

    def test_empty_platform_rejected(self):
        with pytest.raises(ReproError):
            edge_hub_cloud(seed=0, num_edge=0, num_hub=0, num_cloud=0)

    def test_solvable_by_heuristics(self):
        from repro.algorithms.heuristics import greedy_minimize_fp
        from repro.analysis.frontier import latency_grid

        app, plat = edge_hub_cloud(seed=3, stages=4)
        grid = latency_grid(app, plat, num_points=3)
        result = greedy_minimize_fp(app, plat, grid[-1])
        assert 0.0 <= result.failure_probability <= 1.0


class TestFailureMix:
    def test_reliable_minority(self):
        _, plat = failure_mix(seed=0, num_processors=6, reliable_count=2)
        fps = plat.failure_probabilities
        assert all(fp <= 0.05 for fp in fps[:2])
        assert all(fp >= 0.4 for fp in fps[2:])
        assert plat.platform_class is PlatformClass.COMMUNICATION_HOMOGENEOUS

    def test_reliable_count_bounds_checked(self):
        with pytest.raises(ReproError, match="reliable_count"):
            failure_mix(seed=0, num_processors=4, reliable_count=5)


class TestPipelineShapes:
    def test_wide_is_comm_dominated(self):
        app, _ = wide_pipeline(seed=0)
        assert app.num_stages == 12
        assert max(app.works) < min(app.volumes)

    def test_narrow_is_compute_dominated(self):
        app, _ = narrow_pipeline(seed=0)
        assert app.num_stages == 3
        assert min(app.works) > max(app.volumes)


class TestSweepIntegration:
    def test_scenarios_plug_into_sweep_specs(self):
        from repro.api import SweepPlan, run_sweep

        plan = SweepPlan.from_spec(
            {
                "instances": [
                    {"scenario": "narrow-pipeline", "seed": 2},
                    {
                        "scenario": "failure-mix",
                        "seed": 4,
                        "params": {"num_processors": 4, "stages": 3},
                    },
                ],
                "solvers": ["greedy-min-fp"],
                "grid": {"num_points": 4},
            }
        )
        result = run_sweep(plan)
        assert len(result.cells) == 2
        for cell in result.cells:
            assert cell.frontier(strict=False)
