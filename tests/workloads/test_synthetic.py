"""Tests for the synthetic instance generators."""

import pytest

from repro.core import PlatformClass
from repro.workloads.synthetic import (
    random_application,
    random_comm_homogeneous,
    random_fully_heterogeneous,
    random_fully_homogeneous,
    random_platform,
)


class TestGenerators:
    def test_application_shape(self):
        app = random_application(5, seed=0)
        assert app.num_stages == 5
        assert len(app.volumes) == 6

    def test_deterministic_with_seed(self):
        assert random_application(4, seed=7) == random_application(4, seed=7)
        a = random_fully_heterogeneous(4, seed=7)
        b = random_fully_heterogeneous(4, seed=7)
        assert a.speeds == b.speeds
        assert a.topology == b.topology

    def test_fully_homogeneous_class(self):
        plat = random_fully_homogeneous(4, seed=1)
        assert plat.platform_class is PlatformClass.FULLY_HOMOGENEOUS
        assert plat.is_failure_homogeneous

    def test_fully_homogeneous_failhet(self):
        plat = random_fully_homogeneous(4, seed=1, failure_heterogeneous=True)
        assert plat.platform_class is PlatformClass.FULLY_HOMOGENEOUS
        assert not plat.is_failure_homogeneous

    def test_comm_homogeneous_class(self):
        plat = random_comm_homogeneous(4, seed=2)
        assert plat.platform_class is PlatformClass.COMMUNICATION_HOMOGENEOUS

    def test_comm_homogeneous_failhom(self):
        plat = random_comm_homogeneous(4, seed=2, failure_homogeneous=True)
        assert plat.is_failure_homogeneous

    def test_fully_heterogeneous_class(self):
        plat = random_fully_heterogeneous(4, seed=3)
        assert plat.platform_class is PlatformClass.FULLY_HETEROGENEOUS

    def test_ranges_respected(self):
        plat = random_comm_homogeneous(
            10, seed=4, speed_range=(2.0, 3.0), fp_range=(0.1, 0.2)
        )
        assert all(2.0 <= s <= 3.0 for s in plat.speeds)
        assert all(0.1 <= f <= 0.2 for f in plat.failure_probabilities)

    def test_dispatch(self):
        for kind, cls in [
            ("fully-homogeneous", PlatformClass.FULLY_HOMOGENEOUS),
            ("comm-homogeneous", PlatformClass.COMMUNICATION_HOMOGENEOUS),
            ("fully-heterogeneous", PlatformClass.FULLY_HETEROGENEOUS),
        ]:
            assert random_platform(3, kind, seed=5).platform_class is cls

    def test_dispatch_rejects_unknown(self):
        with pytest.raises(ValueError):
            random_platform(3, "quantum")
