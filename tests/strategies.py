"""Hypothesis strategies for model objects.

Kept in one module so every property test draws from the same,
well-bounded distributions: small instance sizes (enumeration stays
cheap), costs within a few orders of magnitude (float comparisons stay
meaningful), failure probabilities covering both extremes.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core import (
    GeneralMapping,
    IntervalMapping,
    PipelineApplication,
    Platform,
    StageInterval,
)

__all__ = [
    "applications",
    "fully_homogeneous_platforms",
    "comm_homogeneous_platforms",
    "fully_heterogeneous_platforms",
    "platforms",
    "interval_mappings",
    "app_platform_mapping",
    "mapping_walks",
]

_costs = st.floats(
    min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
_positive = st.floats(
    min_value=0.1, max_value=100.0, allow_nan=False, allow_infinity=False
)
_fps = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)


@st.composite
def applications(draw, min_stages: int = 1, max_stages: int = 5):
    """Random pipeline applications with bounded costs."""
    n = draw(st.integers(min_value=min_stages, max_value=max_stages))
    works = draw(
        st.lists(_costs, min_size=n, max_size=n)
    )
    volumes = draw(st.lists(_costs, min_size=n + 1, max_size=n + 1))
    return PipelineApplication(works=works, volumes=volumes)


@st.composite
def fully_homogeneous_platforms(
    draw, min_processors: int = 1, max_processors: int = 6
):
    """Random Fully Homogeneous platforms (optionally het. failures)."""
    m = draw(st.integers(min_value=min_processors, max_value=max_processors))
    speed = draw(_positive)
    bandwidth = draw(_positive)
    fps = draw(st.lists(_fps, min_size=m, max_size=m))
    return Platform.fully_homogeneous(
        m, speed=speed, bandwidth=bandwidth, failure_probabilities=fps
    )


@st.composite
def comm_homogeneous_platforms(
    draw,
    min_processors: int = 1,
    max_processors: int = 6,
    failure_homogeneous: bool = False,
):
    """Random Communication Homogeneous platforms."""
    m = draw(st.integers(min_value=min_processors, max_value=max_processors))
    speeds = draw(st.lists(_positive, min_size=m, max_size=m))
    bandwidth = draw(_positive)
    if failure_homogeneous:
        fp = draw(_fps)
        fps = [fp] * m
    else:
        fps = draw(st.lists(_fps, min_size=m, max_size=m))
    return Platform.communication_homogeneous(
        speeds, bandwidth=bandwidth, failure_probabilities=fps
    )


@st.composite
def fully_heterogeneous_platforms(
    draw, min_processors: int = 1, max_processors: int = 5
):
    """Random Fully Heterogeneous platforms (symmetric links)."""
    m = draw(st.integers(min_value=min_processors, max_value=max_processors))
    speeds = draw(st.lists(_positive, min_size=m, max_size=m))
    in_b = draw(st.lists(_positive, min_size=m, max_size=m))
    out_b = draw(st.lists(_positive, min_size=m, max_size=m))
    links = [[1.0] * m for _ in range(m)]
    for u in range(m):
        for v in range(u + 1, m):
            links[u][v] = links[v][u] = draw(_positive)
    fps = draw(st.lists(_fps, min_size=m, max_size=m))
    return Platform.fully_heterogeneous(
        speeds, in_b, out_b, links, failure_probabilities=fps
    )


def platforms(min_processors: int = 1, max_processors: int = 5):
    """Any platform class."""
    return st.one_of(
        fully_homogeneous_platforms(min_processors, max_processors),
        comm_homogeneous_platforms(min_processors, max_processors),
        fully_heterogeneous_platforms(min_processors, max_processors),
    )


@st.composite
def interval_mappings(draw, num_stages: int, num_processors: int):
    """A random valid interval mapping for given sizes."""
    p = draw(
        st.integers(min_value=1, max_value=min(num_stages, num_processors))
    )
    cuts = sorted(
        draw(
            st.lists(
                st.integers(min_value=1, max_value=num_stages - 1),
                min_size=p - 1,
                max_size=p - 1,
                unique=True,
            )
        )
    ) if num_stages > 1 else []
    p = len(cuts) + 1
    bounds = [0, *cuts, num_stages]
    intervals = [
        StageInterval(lo + 1, hi) for lo, hi in zip(bounds, bounds[1:])
    ]
    procs = list(range(1, num_processors + 1))
    perm = draw(st.permutations(procs))
    allocations: list[set[int]] = [{perm[j]} for j in range(p)]
    for extra in perm[p:]:
        target = draw(st.integers(min_value=-1, max_value=p - 1))
        if target >= 0:
            allocations[target].add(extra)
    return IntervalMapping(intervals, allocations)


@st.composite
def app_platform_mapping(draw, platform_strategy=None):
    """A consistent (application, platform, mapping) triple."""
    app = draw(applications(max_stages=4))
    if platform_strategy is None:
        strategy = platforms(min_processors=1, max_processors=5)
    else:
        strategy = platform_strategy
    platform = draw(strategy)
    mapping = draw(interval_mappings(app.num_stages, platform.size))
    return app, platform, mapping


@st.composite
def mapping_walks(draw, steps: int = 4, platform_strategy=None):
    """An (application, platform, walk) triple of neighbourhood moves.

    The walk starts at a random valid mapping and applies up to ``steps``
    random moves from the heuristics' shared move set — exactly the
    access pattern of local search and annealing, which the incremental
    evaluation cache must reproduce bit-for-bit.
    """
    from repro.algorithms.heuristics.neighborhood import neighbors

    app, platform, mapping = draw(app_platform_mapping(platform_strategy))
    walk = [mapping]
    for _ in range(steps):
        moves = list(neighbors(walk[-1], platform.size))
        if not moves:
            break
        walk.append(draw(st.sampled_from(moves)))
    return app, platform, walk


@st.composite
def general_mappings(draw, num_stages: int, num_processors: int):
    """A random general mapping (any stage -> any processor)."""
    assignment = draw(
        st.lists(
            st.integers(min_value=1, max_value=num_processors),
            min_size=num_stages,
            max_size=num_stages,
        )
    )
    return GeneralMapping(assignment)
